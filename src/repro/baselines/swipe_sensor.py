"""Separate fingerprint sensor baseline (Table I column 2).

A discrete swipe/press sensor (home-button style): biometric login without
memorization, but it costs an *extra explicit step* per authentication, it
takes a few seconds, and it provides no post-login protection — the device
is wide open between logins.  Matching quality uses the full-print score
model (a dedicated sensor captures the whole fingertip).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fingerprint import DEFAULT_FULL_MODEL, CalibratedScoreModel

__all__ = ["SwipeAttempt", "SeparateFingerprintSensor"]


@dataclass(frozen=True)
class SwipeAttempt:
    """One explicit swipe authentication."""

    accepted: bool
    score: float
    latency_s: float


class SeparateFingerprintSensor:
    """Explicit-step fingerprint login (the middle column of Table I)."""

    #: Time to reposition the finger onto the discrete sensor and swipe.
    SWIPE_ACTION_S = 1.2
    #: Sensor scan + match time.
    PROCESS_S = 0.35
    #: Probability the swipe fails mechanically (bad swipe speed/angle)
    #: and must be redone — the familiar "try again" experience.
    BAD_SWIPE_RATE = 0.15

    def __init__(self, score_model: CalibratedScoreModel | None = None,
                 accept_threshold: float = 0.45) -> None:
        self.score_model = (DEFAULT_FULL_MODEL if score_model is None
                            else score_model)
        self.accept_threshold = float(accept_threshold)

    def authenticate(self, genuine: bool,
                     rng: np.random.Generator) -> SwipeAttempt:
        """One explicit login: swipe retries + match decision."""
        swipes = 1
        while rng.random() < self.BAD_SWIPE_RATE:
            swipes += 1
        score = self.score_model.sample(genuine, rng)
        return SwipeAttempt(
            accepted=score >= self.accept_threshold,
            score=score,
            latency_s=swipes * self.SWIPE_ACTION_S + self.PROCESS_S,
        )

    def genuine_login(self, rng: np.random.Generator,
                      max_attempts: int = 3) -> SwipeAttempt:
        """A genuine user retries a rejected swipe; returns the final try."""
        total_latency = 0.0
        attempt = self.authenticate(True, rng)
        for _ in range(max_attempts - 1):
            total_latency += attempt.latency_s
            if attempt.accepted:
                break
            attempt = self.authenticate(True, rng)
        else:
            total_latency += attempt.latency_s
        return SwipeAttempt(accepted=attempt.accepted, score=attempt.score,
                            latency_s=total_latency)

    # -- Table I axes -------------------------------------------------------
    @staticmethod
    def continuous_verification() -> bool:
        """Table I axis: a discrete sensor verifies only at login."""
        return False

    @staticmethod
    def user_burden() -> str:
        """Table I axis: what the approach costs the user."""
        return "extra login step (rub/swipe)"

    def mean_login_latency_s(self, rng: np.random.Generator,
                             trials: int = 200) -> float:
        """Average measured login latency over simulated attempts."""
        return float(np.mean([self.genuine_login(rng).latency_s
                              for _ in range(trials)]))

    @staticmethod
    def transparent_to_user() -> bool:
        """Table I axis: the swipe is an explicit extra step."""
        return False
