"""Keystroke-dynamics continuous authentication baseline (related work).

The paper's section V cites keystroke-dynamics systems (Hwang et al.,
Maiorana et al., Clarke & Furnell) as the prior art for implicit mobile
authentication.  This baseline implements the standard statistical
approach: per-user Gaussian profiles over key hold times and digraph
flight times, scored by normalized z-distance.  Its EER (typically >10 %)
is structurally worse than fingerprint matching — which is exactly the
comparison benchmark E11's discussion needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TypingProfile", "KeystrokeSample", "KeystrokeAuthenticator"]


@dataclass(frozen=True)
class TypingProfile:
    """Ground-truth typing rhythm of one user (the simulation's reality)."""

    user_id: str
    hold_mean_s: float  # key-down duration
    hold_std_s: float
    flight_mean_s: float  # key-to-key latency
    flight_std_s: float

    @staticmethod
    def random(user_id: str, rng: np.random.Generator) -> "TypingProfile":
        """Draw a plausible typing profile for a new synthetic user.

        Population spreads are chosen so between-user differences are
        comparable to within-user variability — matching the published
        mobile keystroke studies' EERs (high single digits to ~20 %)
        rather than an artificially separable toy population.
        """
        return TypingProfile(
            user_id=user_id,
            hold_mean_s=float(rng.uniform(0.075, 0.125)),
            hold_std_s=float(rng.uniform(0.015, 0.035)),
            flight_mean_s=float(rng.uniform(0.20, 0.34)),
            flight_std_s=float(rng.uniform(0.05, 0.10)),
        )

    def sample(self, n_keys: int, rng: np.random.Generator) -> "KeystrokeSample":
        """Generate one observed typing burst from this profile."""
        holds = np.maximum(
            rng.normal(self.hold_mean_s, self.hold_std_s, n_keys), 0.01)
        flights = np.maximum(
            rng.normal(self.flight_mean_s, self.flight_std_s, n_keys - 1), 0.01)
        return KeystrokeSample(holds=holds, flights=flights)


@dataclass(frozen=True)
class KeystrokeSample:
    """Observed timings of one typing burst."""

    holds: np.ndarray
    flights: np.ndarray


class KeystrokeAuthenticator:
    """Gaussian-profile keystroke verifier."""

    def __init__(self) -> None:
        self._enrolled: dict[str, tuple[float, float, float, float]] = {}

    def enroll(self, user_id: str, samples: list[KeystrokeSample]) -> None:
        """Fit (hold mean/std, flight mean/std) from enrollment bursts."""
        if not samples:
            raise ValueError("need at least one enrollment sample")
        holds = np.concatenate([s.holds for s in samples])
        flights = np.concatenate([s.flights for s in samples])
        if len(holds) < 10:
            raise ValueError("enrollment needs at least 10 keystrokes")
        self._enrolled[user_id] = (
            float(holds.mean()), float(max(holds.std(), 1e-4)),
            float(flights.mean()), float(max(flights.std(), 1e-4)),
        )

    def score(self, user_id: str, sample: KeystrokeSample) -> float:
        """Similarity in (0, 1]: exp(-mean squared z-distance)."""
        if user_id not in self._enrolled:
            raise KeyError(f"user {user_id!r} not enrolled")
        hold_mean, hold_std, flight_mean, flight_std = self._enrolled[user_id]
        z_hold = (sample.holds.mean() - hold_mean) / hold_std
        z_flight = (sample.flights.mean() - flight_mean) / flight_std
        distance_sq = (z_hold**2 + z_flight**2) / 2.0
        return float(np.exp(-distance_sq / 4.0))

    def evaluate(self, profiles: list[TypingProfile],
                 rng: np.random.Generator, n_bursts: int = 30,
                 keys_per_burst: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Genuine/impostor score arrays over a user population."""
        if len(profiles) < 2:
            raise ValueError("need at least two users")
        for profile in profiles:
            self.enroll(profile.user_id,
                        [profile.sample(keys_per_burst, rng)
                         for _ in range(5)])
        genuine, impostor = [], []
        for i, profile in enumerate(profiles):
            for _ in range(n_bursts):
                genuine.append(self.score(
                    profile.user_id, profile.sample(keys_per_burst, rng)))
                other = profiles[(i + 1) % len(profiles)]
                impostor.append(self.score(
                    profile.user_id, other.sample(keys_per_burst, rng)))
        return np.array(genuine), np.array(impostor)
