"""Multi-tenant TRUST runtime: a discrete-event fleet simulator.

This package serves thousands of simulated TRUST devices against a
shardable pool of :class:`~repro.net.WebServer` replicas, entirely through
the uniform ``WebServer.dispatch`` endpoint API:

- :mod:`~repro.runtime.scheduler` — seeded virtual-clock event loop and
  the per-shard FIFO service queue (the latency model).
- :mod:`~repro.runtime.dispatcher` — consistent-hash account router and
  the replica pool with live rebalancing.
- :mod:`~repro.runtime.cache` — digest-keyed verification-result cache
  (certificate signatures, template matches) with hit-rate accounting.
- :mod:`~repro.runtime.fleet` — fleet configuration and the cheap
  prototype-cloning device factory.
- :mod:`~repro.runtime.metrics` — latency percentiles, throughput and
  outcome counters.
- :mod:`~repro.runtime.simulation` — the scenario driver tying it all
  together.

Quickstart::

    from repro.runtime import FleetConfig, FleetSimulation
    result = FleetSimulation(FleetConfig(n_devices=100, n_shards=4)).run()
    print(result.summary)
"""

from .cache import VerificationCache
from .dispatcher import ConsistentHashRouter, ServerPool
from .fleet import BUTTON_XY, DeviceActor, DeviceFactory, FleetConfig, draw_risk
from .metrics import FleetMetrics, LatencyHistogram
from .scheduler import EventLoop, ServiceQueue
from .simulation import EXPECTED_REJECTIONS, SERVICE_TIME_S, FleetResult, FleetSimulation

__all__ = [
    "BUTTON_XY",
    "ConsistentHashRouter",
    "DeviceActor",
    "DeviceFactory",
    "EXPECTED_REJECTIONS",
    "EventLoop",
    "FleetConfig",
    "FleetMetrics",
    "FleetResult",
    "FleetSimulation",
    "LatencyHistogram",
    "SERVICE_TIME_S",
    "ServerPool",
    "ServiceQueue",
    "VerificationCache",
    "draw_risk",
]
