"""Digest-keyed verification-result cache with hit-rate accounting.

Fleet-scale simulation repeats a lot of *pure* verification work: every
registration presents a CA-signed device certificate (devices cloned from
the same manufacturing prototype share one), and every image-mode match
scores the same (template, probe) minutiae pair the same way.  The cache
memoizes exactly those clock-independent predicates, keyed on content
digests, so a cached answer is byte-identical to a recomputed one.

The cache is deliberately duck-typed: consumers (``WebServer``,
``ImageFingerprintProcessor``) only call ``memoize(kind, key, compute)``
and never import this module, keeping the layering DAG acyclic.  Anything
clock- or policy-dependent (certificate validity windows, role checks,
risk thresholds) must stay outside the cache and be recomputed per use.

Hit/miss/eviction accounting lives in a :class:`~repro.obs.MetricsRegistry`
(``cache.hits``/``cache.misses`` labeled by predicate kind,
``cache.evictions``); the historical ``hits``/``misses`` Counter views are
derived from it, so callers keep indexing by kind while exporters see the
same counters as every other layer.
"""

from __future__ import annotations

from collections import Counter, OrderedDict

from repro.obs import MetricsRegistry

__all__ = ["VerificationCache"]


class VerificationCache:
    """LRU memoizer for pure verification predicates.

    Entries are keyed ``(kind, key)`` where ``kind`` names the predicate
    ("cert-signature", "template-match", ...) and ``key`` is a content
    digest covering *every* input of the computation.  Per-kind hit/miss
    counters feed the fleet metrics layer.  Pass ``registry`` to account
    into a shared registry (the fleet simulation shares one across the
    whole run); by default the cache owns a private one.
    """

    def __init__(self, max_entries: int | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self._store: "OrderedDict[tuple[str, bytes], object]" = OrderedDict()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hits = self.registry.counter(
            "cache.hits", help="verification-cache hits by predicate kind")
        self._misses = self.registry.counter(
            "cache.misses", help="verification-cache misses by predicate kind")
        self._evictions = self.registry.counter(
            "cache.evictions", help="verification-cache LRU evictions")

    def memoize(self, kind: str, key: bytes, compute):
        """Return the cached result for ``(kind, key)`` or compute it."""
        slot = (kind, key)
        if slot in self._store:
            self._hits.inc(kind=kind)
            self._store.move_to_end(slot)
            return self._store[slot]
        self._misses.inc(kind=kind)
        value = compute()
        self._store[slot] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self._evictions.inc()
        return value

    # ------------------------------------------------------------ accounting
    @property
    def hits(self) -> Counter:
        """Per-kind hit counts (a derived view of the registry counter)."""
        return Counter({labels["kind"]: value
                        for labels, value in self._hits.series()})

    @property
    def misses(self) -> Counter:
        """Per-kind miss counts (a derived view of the registry counter)."""
        return Counter({labels["kind"]: value
                        for labels, value in self._misses.series()})

    @property
    def evictions(self) -> int:
        """Total LRU evictions."""
        return self._evictions.total()

    def lookups(self, kind: str | None = None) -> int:
        """Total lookups, overall or for one predicate kind."""
        if kind is not None:
            return self._hits.value(kind=kind) + self._misses.value(kind=kind)
        return self._hits.total() + self._misses.total()

    def hit_rate(self, kind: str | None = None) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        total = self.lookups(kind)
        if total == 0:
            return 0.0
        hits = (self._hits.value(kind=kind) if kind is not None
                else self._hits.total())
        return hits / total

    def stats(self) -> list[tuple[str, int, int, float]]:
        """Sorted per-kind rows: (kind, hits, misses, hit_rate)."""
        hits, misses = self.hits, self.misses
        kinds = sorted(set(hits) | set(misses))
        return [(kind, hits[kind], misses[kind],
                 self.hit_rate(kind)) for kind in kinds]

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries and counters."""
        self._store.clear()
        self._hits.clear()
        self._misses.clear()
        self._evictions.clear()
