"""Digest-keyed verification-result cache with hit-rate accounting.

Fleet-scale simulation repeats a lot of *pure* verification work: every
registration presents a CA-signed device certificate (devices cloned from
the same manufacturing prototype share one), and every image-mode match
scores the same (template, probe) minutiae pair the same way.  The cache
memoizes exactly those clock-independent predicates, keyed on content
digests, so a cached answer is byte-identical to a recomputed one.

The cache is deliberately duck-typed: consumers (``WebServer``,
``ImageFingerprintProcessor``) only call ``memoize(kind, key, compute)``
and never import this module, keeping the layering DAG acyclic.  Anything
clock- or policy-dependent (certificate validity windows, role checks,
risk thresholds) must stay outside the cache and be recomputed per use.
"""

from __future__ import annotations

from collections import Counter, OrderedDict

__all__ = ["VerificationCache"]


class VerificationCache:
    """LRU memoizer for pure verification predicates.

    Entries are keyed ``(kind, key)`` where ``kind`` names the predicate
    ("cert-signature", "template-match", ...) and ``key`` is a content
    digest covering *every* input of the computation.  Per-kind hit/miss
    counters feed the fleet metrics layer.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self._store: "OrderedDict[tuple[str, bytes], object]" = OrderedDict()
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.evictions = 0

    def memoize(self, kind: str, key: bytes, compute):
        """Return the cached result for ``(kind, key)`` or compute it."""
        slot = (kind, key)
        if slot in self._store:
            self.hits[kind] += 1
            self._store.move_to_end(slot)
            return self._store[slot]
        self.misses[kind] += 1
        value = compute()
        self._store[slot] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1
        return value

    # ------------------------------------------------------------ accounting
    def lookups(self, kind: str | None = None) -> int:
        """Total lookups, overall or for one predicate kind."""
        if kind is not None:
            return self.hits[kind] + self.misses[kind]
        return sum(self.hits.values()) + sum(self.misses.values())

    def hit_rate(self, kind: str | None = None) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        total = self.lookups(kind)
        if total == 0:
            return 0.0
        hits = self.hits[kind] if kind is not None else sum(self.hits.values())
        return hits / total

    def stats(self) -> list[tuple[str, int, int, float]]:
        """Sorted per-kind rows: (kind, hits, misses, hit_rate)."""
        kinds = sorted(set(self.hits) | set(self.misses))
        return [(kind, self.hits[kind], self.misses[kind],
                 self.hit_rate(kind)) for kind in kinds]

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries and counters."""
        self._store.clear()
        self.hits.clear()
        self.misses.clear()
        self.evictions = 0
