"""Fleet construction: configuration, cheap device cloning, device actors.

Building one honest TRUST device costs an RSA key generation plus a
fingerprint enrollment — fine for a benchmark of one, ruinous for a fleet
of thousands.  The factory amortizes both:

- **Prototype cloning** — a handful of fully-built prototype devices are
  ``deepcopy``-cloned per fleet member; each clone gets a fresh DRBG (so
  nonces/session keys diverge) but keeps the prototype's built-in device
  key and CA certificate, like handsets sharing a manufacturing batch's
  attestation material.  A visible consequence: registrations present only
  ``prototype_count`` distinct certificates, which is what gives the
  shared cert-signature cache its fleet hit rate.
- **Service-keypair pool** — per-service key generation (Fig. 9 step 2)
  draws from a pre-generated pool via ``CryptoProcessor.keypair_source``;
  the *modeled* keygen latency is still accounted, so reported protocol
  costs are unchanged — only host wall-clock shrinks.

All randomness derives from ``FleetConfig.seed`` through per-actor
``numpy`` generators keyed by device index, so construction is independent
of call order.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.crypto import (
    CertificateAuthority,
    CryptoBackend,
    default_backend,
    get_backend,
)
from repro.fingerprint import DEFAULT_PARTIAL_MODEL, enroll_master, synthesize_master
from repro.net import MobileDevice, TrustClient, TrustSession

__all__ = ["BUTTON_XY", "FleetConfig", "DeviceFactory", "DeviceActor",
           "draw_risk"]

#: Where fleet users press login/confirm buttons: over the bottom-centre
#: sensor of the default layout (same spot as ``repro.eval``'s harness).
BUTTON_XY = (28.0, 80.0)


@dataclass(frozen=True)
class FleetConfig:
    """One fleet scenario: population, sharding, workload mix, seeds."""

    n_devices: int = 1000
    n_shards: int = 4
    seed: int = 7
    #: Content pages each device requests after login.
    requests_per_device: int = 3
    #: Fraction of requests reporting marginal risk (0.5, 0.75) — the
    #: server withholds content and demands a re-attested touch.
    challenge_fraction: float = 0.08
    #: Fraction of requests reporting breach-level risk (> 0.75) — the
    #: server terminates the session (``risk-too-high``).
    hijack_fraction: float = 0.01
    processor_mode: str = "modeled"
    #: Key sizes are deliberately small: fleet runs measure *scheduling*,
    #: not RSA arithmetic; protocol costs use modeled latencies anyway.
    device_key_bits: int = 512
    server_key_bits: int = 512
    ca_key_bits: int = 512
    prototype_count: int = 4
    keypair_pool_size: int = 8
    #: Device start times are spread uniformly over this window.
    ramp_s: float = 30.0
    #: Mean think time between a device's interactions (exponential).
    think_time_s: float = 2.0
    network_rtt_s: float = 0.040
    domain: str = "www.fleet.example"
    #: Crypto engine name from the backend registry; empty string means
    #: the process default (``REPRO_CRYPTO_BACKEND``).  Every registered
    #: backend is byte-identical, so this choice moves host wall-clock
    #: only — trace and summary stay bit-for-bit the same.
    crypto_backend: str = ""

    def resolve_backend(self) -> CryptoBackend:
        """The :class:`CryptoBackend` instance this config selects."""
        if self.crypto_backend:
            return get_backend(self.crypto_backend)
        return default_backend()

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("n_devices must be positive")
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if self.requests_per_device < 0:
            raise ValueError("requests_per_device must be >= 0")
        if self.prototype_count < 1 or self.keypair_pool_size < 1:
            raise ValueError("prototype/keypair pools must be non-empty")
        if not 0.0 <= self.challenge_fraction + self.hijack_fraction <= 1.0:
            raise ValueError("challenge + hijack fractions must fit in [0, 1]")
        if self.processor_mode not in ("image", "modeled"):
            raise ValueError("processor_mode must be 'image' or 'modeled'")
        if self.crypto_backend:
            # Fail fast on a typo'd engine name, not mid-construction.
            get_backend(self.crypto_backend)


def _entropy(config: FleetConfig, *stream: int) -> bytes:
    """32 deterministic bytes for one named entropy stream."""
    return np.random.default_rng((config.seed,) + stream).bytes(32)


def draw_risk(rng: np.random.Generator, config: FleetConfig) -> float:
    """One request's reported risk under the configured workload mix."""
    u = rng.random()
    if u < config.hijack_fraction:
        return 0.76 + 0.2 * rng.random()  # breach: terminated server-side
    if u < config.hijack_fraction + config.challenge_fraction:
        return 0.51 + 0.23 * rng.random()  # marginal: challenged
    return 0.4 * rng.random()  # benign


class DeviceFactory:
    """Builds fleet devices by cloning enrolled prototypes."""

    def __init__(self, config: FleetConfig, ca: CertificateAuthority,
                 verification_cache=None,
                 backend: CryptoBackend | None = None) -> None:
        self.config = config
        self.verification_cache = verification_cache
        self.backend = backend if backend is not None \
            else config.resolve_backend()
        #: The one physical finger every fleet user presents.  Sharing it
        #: is sound: the modeled processor decides genuine/impostor by
        #: finger id, and per-device score draws come from per-actor rngs.
        self.master = synthesize_master(
            "fleet-right-thumb", np.random.default_rng((config.seed, 1)))
        template = enroll_master(self.master,
                                 np.random.default_rng((config.seed, 2)))
        self.prototypes: list[MobileDevice] = []
        for batch in range(config.prototype_count):
            prototype = MobileDevice(
                f"fleet-proto-{batch}", _entropy(config, 3, batch), ca=ca,
                processor_mode=config.processor_mode,
                key_bits=config.device_key_bits, backend=self.backend)
            if config.processor_mode == "modeled":
                prototype.flock.enroll_local_user(
                    template, score_model=DEFAULT_PARTIAL_MODEL)
            else:
                prototype.flock.enroll_local_user(template)
            self.prototypes.append(prototype)
        pool_drbg = self.backend.make_drbg(
            _entropy(config, 4),
            personalization=b"fleet-service-keypair-pool")
        self._service_pool = [
            self.backend.generate_keypair(pool_drbg,
                                          bits=config.device_key_bits)
            for _ in range(config.keypair_pool_size)]

    def build(self, index: int) -> MobileDevice:
        """Clone prototype ``index % B`` into fleet member ``index``."""
        device = copy.deepcopy(
            self.prototypes[index % len(self.prototypes)])
        device_id = f"fleet-dev-{index:05d}"
        device.device_id = device_id
        flock = device.flock
        flock.device_id = device_id
        # Fresh per-clone DRBG: nonces, session keys and signature padding
        # diverge between clones even within one prototype batch.
        flock._drbg = self.backend.make_drbg(
            _entropy(self.config, 5, index),
            personalization=device_id.encode())
        flock.crypto.rng = flock._drbg
        pooled = self._service_pool[index % len(self._service_pool)]
        flock.crypto.keypair_source = lambda pooled=pooled: pooled
        if self.verification_cache is not None:
            # Only the image processor has a match cache to accept; the
            # install is a no-op for modeled fleets.
            flock.install_verification_cache(self.verification_cache)
        return device


@dataclass
class DeviceActor:
    """One simulated user + device working through its session script."""

    index: int
    account: str
    device: MobileDevice
    client: TrustClient
    rng: np.random.Generator
    session: TrustSession | None = None
    requests_done: int = 0
    alive: bool = True
