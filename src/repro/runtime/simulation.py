"""The multi-tenant fleet simulation: thousands of devices, N shards.

``FleetSimulation`` wires every runtime component together: a
:class:`~repro.runtime.scheduler.EventLoop` drives per-device interaction
chains (register → login → continuous requests, with challenge and
termination branches) against a :class:`~repro.runtime.dispatcher.ServerPool`
whose shards share one :class:`~repro.runtime.cache.VerificationCache`.
Every inbound message goes through ``WebServer.dispatch``, the single
inbound surface.

Latency model: an interaction arriving at virtual time ``t`` waits in its
shard's FIFO :class:`~repro.runtime.scheduler.ServiceQueue`, is served for
a modeled per-endpoint service time, and completes one network RTT later;
``latency = queue wait + service + RTT``.  The protocol itself (all
signatures, MACs, nonces — real computations) runs at event-execution
time, so server state always mutates in arrival order.

Determinism: a run is a pure function of :class:`FleetConfig` — same
config ⇒ byte-identical event trace and summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.crypto import CertificateAuthority
from repro.eval import render_table
from repro.net import TrustClient, UntrustedChannel
from repro.obs import Instrumentation, MetricsRegistry, NOOP

from .cache import VerificationCache
from .dispatcher import ServerPool
from .fleet import BUTTON_XY, DeviceActor, DeviceFactory, FleetConfig, draw_risk
from .metrics import FleetMetrics
from .scheduler import EventLoop, ServiceQueue

__all__ = ["EXPECTED_REJECTIONS", "SERVICE_TIME_S", "FleetResult",
           "FleetSimulation"]

#: Modeled shard-side service time per dispatched endpoint (seconds):
#: registration and login pay an RSA private-key operation, post-login
#: traffic is symmetric-crypto cheap (the paper's scalability pitch).
SERVICE_TIME_S = {
    "register": 0.020,
    "login": 0.015,
    "request": 0.004,
    "challenge": 0.006,
}

#: Rejection codes the standard workload is expected to produce: the
#: hijack fraction reports breach-level risk, which the server answers by
#: terminating the session.  Anything else is a scenario bug.
EXPECTED_REJECTIONS = frozenset({"risk-too-high"})


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    config: FleetConfig
    metrics: FleetMetrics
    #: Executed ``(virtual_time, label)`` events — the replay witness.
    trace: list[tuple[float, str]]
    #: Deterministic human-readable report.
    summary: str
    cache: VerificationCache
    pool: ServerPool

    @property
    def unexpected_rejections(self) -> dict[str, int]:
        """Rejection codes outside the scenario's expected set."""
        return {code: count
                for code, count in sorted(self.pool.rejection_totals().items())
                if code not in EXPECTED_REJECTIONS}


class FleetSimulation:
    """One seeded discrete-event run of a device fleet against a pool."""

    def __init__(self, config: FleetConfig,
                 obs: Instrumentation | None = None) -> None:
        self.config = config
        self.obs = obs if obs is not None else NOOP
        # One registry for the whole run: fleet accounting and the shared
        # verification cache record into the same instrument set an
        # injected live bundle exports from.
        registry = (self.obs.metrics
                    if isinstance(self.obs.metrics, MetricsRegistry)
                    else MetricsRegistry())
        # One backend instance for the whole run: CA, every shard, every
        # device.  Selection never reaches the trace or the summary —
        # backends are byte-identical by contract.
        self.backend = config.resolve_backend()
        self.ca = CertificateAuthority(
            name="fleet-ca",
            rng=self.backend.make_drbg(
                b"fleet-ca-root", personalization=config.domain.encode()),
            key_bits=config.ca_key_bits, backend=self.backend)
        self.cache = VerificationCache(registry=registry)
        self.pool = ServerPool(
            config.domain, self.ca, b"fleet-service-key",
            config.n_shards, key_bits=config.server_key_bits,
            verification_cache=self.cache, obs=obs, backend=self.backend)
        self.factory = DeviceFactory(config, self.ca,
                                     verification_cache=self.cache,
                                     backend=self.backend)
        self.loop = EventLoop(tracer=self.obs.tracer)
        # Spans opened inside events get virtual-clock timestamps, which
        # keeps traced fleet runs as replayable as untraced ones.
        self.obs.tracer.bind_clock(lambda: self.loop.now)
        self.metrics = FleetMetrics(registry=registry)
        self._queues = {shard_id: ServiceQueue()
                        for shard_id in self.pool.shard_ids}
        self.actors: list[DeviceActor] = []
        for index in range(config.n_devices):
            account = f"user-{index:05d}"
            self.pool.create_account(account, "fleet-reset-phrase")
            device = self.factory.build(index)
            if self.obs.enabled:
                device.flock.obs = self.obs
            channel = UntrustedChannel(keep_log=False)
            client = TrustClient(device, self.pool.shard_for(account),
                                 channel, obs=self.obs)
            self.actors.append(DeviceActor(
                index=index, account=account, device=device, client=client,
                rng=np.random.default_rng((config.seed, 6, index))))

    # ------------------------------------------------------------- lifecycle
    def run(self) -> FleetResult:
        """Execute the whole fleet scenario and summarize it."""
        for actor in self.actors:
            start = actor.rng.uniform(0.0, self.config.ramp_s)
            self.loop.schedule(start, f"{actor.account} register",
                               partial(self._step, actor, "register"))
        self.loop.run()
        for actor in self.actors:
            channel = actor.client.channel
            self.metrics.bytes_to_server += channel.bytes_to_server
            self.metrics.bytes_to_device += channel.bytes_to_device
            self.metrics.messages += channel.message_count
        return FleetResult(
            config=self.config, metrics=self.metrics,
            trace=list(self.loop.trace), summary=self._summary(),
            cache=self.cache, pool=self.pool)

    # ------------------------------------------------------------- one event
    def _step(self, actor: DeviceActor, op: str) -> None:
        """Run one device interaction and schedule the actor's next one."""
        config = self.config
        shard_id = self.pool.router.route(actor.account)
        actor.client.server = self.pool.shards[shard_id]
        t = self.loop.now
        now = int(t)
        if op == "register":
            outcome = actor.client.register(
                actor.account, BUTTON_XY, self.factory.master, actor.rng,
                now=now, time_s=t)
        elif op == "login":
            outcome = actor.client.login(
                actor.account, BUTTON_XY, self.factory.master, actor.rng,
                risk=0.3 * actor.rng.random(), now=now, time_s=t)
        elif op == "request":
            outcome = actor.client.request(
                actor.session, draw_risk(actor.rng, config), actor.rng,
                now=now)
        elif op == "challenge":
            outcome = actor.client.answer_challenge(
                actor.session, BUTTON_XY, self.factory.master, actor.rng,
                now=now, time_s=t)
        else:
            raise ValueError(f"unknown fleet op {op!r}")

        start, completion = self._queues[shard_id].begin(
            t, SERVICE_TIME_S[op])
        finished = completion + config.network_rtt_s
        self.metrics.record(op, outcome.reason, finished - t, finished)
        self._schedule_next(actor, op, outcome, finished)

    def _schedule_next(self, actor: DeviceActor, op: str, outcome,
                       finished: float) -> None:
        config = self.config
        next_op = None
        if op == "register":
            next_op = "login" if outcome.success else None
        elif op == "login":
            if outcome.success:
                actor.session = outcome.session
                if actor.requests_done < config.requests_per_device:
                    next_op = "request"
        elif op == "request":
            if outcome.success:
                actor.requests_done += 1
                if actor.requests_done < config.requests_per_device:
                    next_op = "request"
            elif outcome.challenged:
                next_op = "challenge"
        elif op == "challenge":
            if outcome.success:
                # The answered challenge satisfies the withheld request.
                actor.requests_done += 1
                if actor.requests_done < config.requests_per_device:
                    next_op = "request"
        if next_op is None:
            actor.alive = False
            return
        think = actor.rng.exponential(config.think_time_s)
        self.loop.schedule(finished + think,
                           f"{actor.account} {next_op}",
                           partial(self._step, actor, next_op))

    # --------------------------------------------------------------- report
    def _summary(self) -> str:
        """Deterministic text report of the finished run."""
        config, metrics = self.config, self.metrics
        rejections = self.pool.rejection_totals()
        parts = [f"TRUST fleet load: {config.n_devices} devices over "
                 f"{config.n_shards} shards ({config.processor_mode} "
                 f"processors)"]

        overview = [
            ["devices", config.n_devices],
            ["shards", config.n_shards],
            ["interactions", metrics.interactions],
            ["simulated duration", f"{metrics.horizon_s:.3f} s"],
            ["throughput", f"{metrics.throughput_rps:.2f} req/s"],
            ["registrations ok", metrics.count("register", "ok")],
            ["logins ok", metrics.count("login", "ok")],
            ["requests ok", metrics.count("request", "ok")],
            ["challenges passed", metrics.count("challenge", "ok")],
            ["sessions terminated",
             metrics.count("request", "risk-too-high")],
            ["rejections", " ".join(f"{code}={count}" for code, count
                                    in sorted(rejections.items())) or "-"],
            ["messages carried", metrics.messages],
            ["bytes to server", metrics.bytes_to_server],
            ["bytes to device", metrics.bytes_to_device],
        ]
        parts.append(render_table(["metric", "value"], overview,
                                  title="\nfleet overview"))

        latency_rows = [[op, count, f"{mean * 1e3:.2f}", f"{p50 * 1e3:.2f}",
                         f"{p99 * 1e3:.2f}"]
                        for op, count, mean, p50, p99
                        in metrics.latency_rows()]
        parts.append(render_table(
            ["op", "count", "mean ms", "p50 ms", "p99 ms"], latency_rows,
            title="\nend-to-end latency (queue + service + RTT)"))

        cache_rows = [[kind, hits, misses, f"{rate:.1%}"]
                      for kind, hits, misses, rate in self.cache.stats()]
        parts.append(render_table(
            ["verification", "hits", "misses", "hit rate"],
            cache_rows or [["-", 0, 0, "0.0%"]],
            title="\nverification cache"))

        accounts = self.pool.account_totals()
        endpoint_calls = {
            shard_id: sum(self.pool.shards[shard_id].endpoint_calls.values())
            for shard_id in self.pool.shard_ids}
        shard_rows = [[shard_id, accounts[shard_id],
                       endpoint_calls[shard_id],
                       f"{self._queues[shard_id].utilization(metrics.horizon_s):.1%}"]
                      for shard_id in self.pool.shard_ids]
        parts.append(render_table(
            ["shard", "accounts", "dispatches", "utilization"], shard_rows,
            title="\nper-shard balance"))
        return "\n".join(parts)
