"""Deterministic discrete-event scheduler with a virtual clock.

The fleet simulation never touches the wall clock: every device action is
an event on this loop, time advances only by popping the event heap, and
ties are broken by a monotonic sequence number — so a run is a pure
function of its seeds.  The executed-event trace doubles as the
determinism witness: two runs of the same configuration must produce
byte-identical traces (see ``tests/runtime/test_fleet_replay.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.obs import NULL_TRACER

__all__ = ["EventLoop", "ServiceQueue"]


class EventLoop:
    """A (time, sequence)-ordered event heap driving a virtual clock.

    When a tracer is injected, every executed event runs inside a
    ``loop.event`` span stamped with the event's virtual time — and since
    the composition root binds the tracer's clock to ``loop.now``, every
    span the event's action opens (client ops, server dispatches) carries
    virtual-clock timestamps too, keeping fleet traces deterministic.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self.processed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._seq = 0
        self._heap: list[tuple[float, int, str, Callable[[], None]]] = []
        #: Executed events as ``(virtual_time, label)`` — the replay trace.
        self.trace: list[tuple[float, str]] = []

    def schedule(self, at: float, label: str,
                 action: Callable[[], None]) -> None:
        """Enqueue ``action`` to run at virtual time ``at``."""
        at = float(at)
        if at < self.now:
            raise ValueError(
                f"cannot schedule into the past ({at:.6f} < {self.now:.6f})")
        heapq.heappush(self._heap, (at, self._seq, label, action))
        self._seq += 1

    def schedule_after(self, delay: float, label: str,
                       action: Callable[[], None]) -> None:
        """Enqueue ``action`` to run ``delay`` after the current time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.schedule(self.now + delay, label, action)

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._heap)

    def run(self, max_events: int | None = None) -> int:
        """Pop-and-execute until the heap drains; returns events run."""
        ran = 0
        while self._heap and (max_events is None or ran < max_events):
            at, _, label, action = heapq.heappop(self._heap)
            self.now = at
            self.trace.append((at, label))
            with self.tracer.span("loop.event", label=label, at=at):
                action()
            ran += 1
            self.processed += 1
        return ran


@dataclass
class ServiceQueue:
    """FIFO single-server queue in virtual time (one shard's capacity).

    Jobs are admitted in arrival order; a job arriving while the server is
    busy waits until ``busy_until``.  This is the latency model of the
    fleet: response time = queue wait + service time (+ the network RTT the
    caller adds).
    """

    busy_until: float = 0.0
    served: int = 0
    busy_time_s: float = 0.0

    def begin(self, arrival: float, service_s: float) -> tuple[float, float]:
        """Admit one job; returns its (start, completion) virtual times."""
        if service_s < 0:
            raise ValueError(f"negative service time {service_s!r}")
        start = max(float(arrival), self.busy_until)
        completion = start + service_s
        self.busy_until = completion
        self.served += 1
        self.busy_time_s += service_s
        return start, completion

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction of ``[0, horizon_s]`` (0.0 for an empty horizon)."""
        if horizon_s <= 0:
            return 0.0
        return min(1.0, self.busy_time_s / horizon_s)
