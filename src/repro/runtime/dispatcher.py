"""Per-account sharding: consistent-hash router + web-server replica pool.

A TRUST service at fleet scale is one *logical* domain served by N
``WebServer`` replicas.  Every replica is constructed from the same key
seed, so they share the service key pair and certificate — exactly like a
replicated HTTPS deployment sharing one TLS key — and a device's stored
per-domain binding verifies against any of them.  What is *sharded* is the
account database: each account lives on exactly one replica, chosen by a
consistent-hash ring over account names, so adding or removing a shard
moves only ~K/N accounts (``ServerPool.rebalance``).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import Iterable

from repro.crypto import CertificateAuthority, CryptoBackend, default_backend
from repro.net import WebServer

__all__ = ["ConsistentHashRouter", "ServerPool"]


class ConsistentHashRouter:
    """SHA-256 hash ring mapping account names to shard ids.

    Each shard contributes ``replicas`` virtual points to the ring; an
    account routes to the first point clockwise of its own hash.  The ring
    is a plain sorted list — lookups are ``bisect``, and membership
    changes rebuild only the affected points.
    """

    def __init__(self, shard_ids: Iterable[str] = (),
                 replicas: int = 64,
                 backend: CryptoBackend | None = None) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self.backend = backend if backend is not None else default_backend()
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []  # ring points alone, for bisect
        self._shards: set[str] = set()
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    def _point(self, label: str) -> int:
        # Ring geometry is backend-independent: every registered backend's
        # SHA-256 agrees, so routing never shifts with the engine choice.
        return int.from_bytes(
            self.backend.sha256(label.encode("utf-8"))[:8], "big")

    def add_shard(self, shard_id: str) -> None:
        """Insert a shard's virtual points into the ring."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already routed")
        self._shards.add(shard_id)
        for replica in range(self.replicas):
            self._ring.append((self._point(f"{shard_id}#{replica}"),
                               shard_id))
        self._ring.sort()
        self._points = [point for point, _ in self._ring]

    def remove_shard(self, shard_id: str) -> None:
        """Drop a shard's virtual points from the ring."""
        if shard_id not in self._shards:
            raise KeyError(f"shard {shard_id!r} not routed")
        self._shards.discard(shard_id)
        self._ring = [(point, sid) for point, sid in self._ring
                      if sid != shard_id]
        self._points = [point for point, _ in self._ring]

    @property
    def shard_ids(self) -> list[str]:
        """Routed shards, sorted."""
        return sorted(self._shards)

    def route(self, account: str) -> str:
        """The shard an account's state lives on."""
        if not self._ring:
            raise LookupError("no shards routed")
        index = bisect_right(self._points, self._point(account))
        if index == len(self._ring):
            index = 0  # wrap past the highest ring point
        return self._ring[index][1]

    def assignments(self, accounts: Iterable[str]) -> dict[str, str]:
        """Snapshot mapping of each account to its shard."""
        return {account: self.route(account) for account in accounts}


class ServerPool:
    """N same-key ``WebServer`` replicas behind one consistent-hash router.

    All replicas share the verification cache (its keys are content
    digests, so sharing is sound) and the same key seed (replica
    semantics).  Accounts are provisioned on — and migrate between —
    their ring-assigned home shard.
    """

    def __init__(self, domain: str, ca: CertificateAuthority,
                 key_seed: bytes, n_shards: int, key_bits: int = 1024,
                 verification_cache=None, ring_replicas: int = 64,
                 obs=None, backend: CryptoBackend | None = None) -> None:
        if n_shards < 1:
            raise ValueError("a pool needs at least one shard")
        self.domain = domain
        self.ca = ca
        self._key_seed = key_seed
        self.key_bits = key_bits
        self.verification_cache = verification_cache
        #: Instrumentation handed to every shard (including ones added
        #: later), so all replicas trace into one tree.
        self.obs = obs
        #: Crypto engine shared by the router and every shard (including
        #: ones added later), so the whole pool runs one backend.
        self.backend = backend if backend is not None else default_backend()
        self.router = ConsistentHashRouter(replicas=ring_replicas,
                                           backend=self.backend)
        self.shards: dict[str, WebServer] = {}
        self._next_index = 0
        for _ in range(n_shards):
            self.add_shard()

    # ------------------------------------------------------------ membership
    def add_shard(self) -> str:
        """Bring up one more replica; returns its shard id.

        The new shard immediately takes ring ownership of its key range;
        call :meth:`rebalance` to actually move the affected accounts.
        """
        shard_id = f"shard-{self._next_index}"
        self._next_index += 1
        self.shards[shard_id] = WebServer(
            self.domain, self.ca, self._key_seed, key_bits=self.key_bits,
            verification_cache=self.verification_cache, obs=self.obs,
            backend=self.backend)
        self.router.add_shard(shard_id)
        return shard_id

    def remove_shard(self, shard_id: str) -> list[tuple[str, str, str]]:
        """Drain and retire a replica; returns the moves made."""
        if shard_id not in self.shards:
            raise KeyError(f"unknown shard {shard_id!r}")
        self.router.remove_shard(shard_id)
        retired = self.shards.pop(shard_id)
        moved = []
        for account in retired.accounts():
            home = self.router.route(account)
            self.shards[home].import_account(
                account, retired.export_account(account))
            moved.append((account, shard_id, home))
        return moved

    def rebalance(self) -> list[tuple[str, str, str]]:
        """Move every misplaced account to its ring home.

        Returns ``(account, from_shard, to_shard)`` tuples; consistent
        hashing keeps this list to roughly K/N of the accounts after a
        membership change.
        """
        moved = []
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            for account in shard.accounts():
                home = self.router.route(account)
                if home != shard_id:
                    self.shards[home].import_account(
                        account, shard.export_account(account))
                    moved.append((account, shard_id, home))
        return moved

    # -------------------------------------------------------------- routing
    @property
    def shard_ids(self) -> list[str]:
        """Live shard ids, sorted."""
        return sorted(self.shards)

    def shard_for(self, account: str) -> WebServer:
        """The replica currently owning an account."""
        return self.shards[self.router.route(account)]

    def create_account(self, account: str, reset_phrase: str) -> None:
        """Provision an account on its home shard."""
        self.shard_for(account).create_account(account, reset_phrase)

    # ------------------------------------------------------------ aggregates
    def rejection_totals(self) -> Counter:
        """Rejection-code counters summed across shards."""
        totals: Counter = Counter()
        for shard_id in sorted(self.shards):
            totals.update(self.shards[shard_id].rejections)
        return totals

    def endpoint_totals(self) -> Counter:
        """Dispatch endpoint-call counters summed across shards."""
        totals: Counter = Counter()
        for shard_id in sorted(self.shards):
            totals.update(self.shards[shard_id].endpoint_calls)
        return totals

    def account_totals(self) -> dict[str, int]:
        """Accounts per shard (sorted by shard id)."""
        return {shard_id: len(self.shards[shard_id].accounts())
                for shard_id in sorted(self.shards)}
