"""Fleet metrics: latency percentiles, throughput, outcome counters.

Everything here is deterministic by construction — no wall clock, no dict
iteration over unsorted byte keys — so two runs of the same seeded
simulation render byte-identical summaries (the replay tests and the load
benchmark both assert exactly that).
"""

from __future__ import annotations

import math
from collections import Counter

__all__ = ["LatencyHistogram", "FleetMetrics"]


class LatencyHistogram:
    """Latency samples with nearest-rank percentiles.

    Samples are kept raw (a fleet run records thousands, not millions) so
    p50/p99 are exact, not bucket-interpolated.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        if seconds < 0:
            raise ValueError(f"negative latency {seconds!r}")
        self._samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Mean sample (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100] (0.0 when empty)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} out of [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(len(ordered) * p / 100))
        return ordered[rank - 1]


class FleetMetrics:
    """Aggregated outcome of one fleet run."""

    def __init__(self) -> None:
        #: ``(op, reason)`` -> count, e.g. ``("request", "ok")``.
        self.outcomes: Counter = Counter()
        #: Per-op latency distributions.
        self.latency: dict[str, LatencyHistogram] = {}
        #: Virtual time of the latest interaction completion.
        self.horizon_s = 0.0
        # Channel totals, filled by the simulation at the end of a run.
        self.bytes_to_server = 0
        self.bytes_to_device = 0
        self.messages = 0

    def record(self, op: str, reason: str, latency_s: float,
               finished_s: float) -> None:
        """Account one completed interaction."""
        self.outcomes[(op, reason)] += 1
        if op not in self.latency:
            self.latency[op] = LatencyHistogram()
        self.latency[op].record(latency_s)
        self.horizon_s = max(self.horizon_s, finished_s)

    # -------------------------------------------------------------- queries
    @property
    def interactions(self) -> int:
        """Total interactions recorded (any outcome)."""
        return sum(self.outcomes.values())

    def count(self, op: str, reason: str | None = None) -> int:
        """Interactions for one op, optionally restricted to a reason."""
        if reason is not None:
            return self.outcomes[(op, reason)]
        return sum(count for (o, _), count in self.outcomes.items()
                   if o == op)

    @property
    def throughput_rps(self) -> float:
        """Completed interactions per simulated second."""
        if self.horizon_s <= 0:
            return 0.0
        return self.interactions / self.horizon_s

    def outcome_rows(self) -> list[tuple[str, str, int]]:
        """Sorted ``(op, reason, count)`` rows for rendering."""
        return [(op, reason, self.outcomes[(op, reason)])
                for op, reason in sorted(self.outcomes)]

    def latency_rows(self) -> list[tuple[str, int, float, float, float]]:
        """Sorted ``(op, count, mean_s, p50_s, p99_s)`` rows."""
        return [(op, hist.count, hist.mean, hist.percentile(50),
                 hist.percentile(99))
                for op, hist in sorted(self.latency.items())]
