"""Fleet metrics: latency percentiles, throughput, outcome counters.

Everything here is deterministic by construction — no wall clock, no dict
iteration over unsorted byte keys — so two runs of the same seeded
simulation render byte-identical summaries (the replay tests and the load
benchmark both assert exactly that).

Since the observability refactor the numbers live in a
:class:`~repro.obs.MetricsRegistry` (``fleet.interactions``,
``fleet.latency_seconds``, ...) instead of private Counters; the public
query surface (``outcomes``, ``latency``, ``horizon_s``, row renderers) is
unchanged and derives its values from the registry, so existing reports
render byte-identically while exporters see the same instruments.
"""

from __future__ import annotations

from collections import Counter

from repro.obs import HistogramSeries, MetricsRegistry

__all__ = ["LatencyHistogram", "FleetMetrics"]


class LatencyHistogram(HistogramSeries):
    """Latency samples with nearest-rank percentiles.

    Kept as a named subclass of the registry's series type for API
    compatibility; semantics (raw samples, exact p50/p99, the negative-
    sample error message) are inherited unchanged.
    """


class FleetMetrics:
    """Aggregated outcome of one fleet run.

    ``registry`` lets a composition root (the fleet simulation) share one
    :class:`~repro.obs.MetricsRegistry` between fleet accounting, the
    verification cache and any injected instrumentation bundle; when
    omitted the metrics own a private registry, so standalone use needs no
    wiring.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._outcomes = self.registry.counter(
            "fleet.interactions",
            help="completed interactions by op and reason")
        self._latency = self.registry.histogram(
            "fleet.latency_seconds",
            help="end-to-end interaction latency by op")
        self._horizon = self.registry.gauge(
            "fleet.horizon_seconds",
            help="virtual time of the latest interaction completion")
        self._bytes = self.registry.gauge(
            "fleet.channel_bytes",
            help="channel byte totals by direction")
        self._messages = self.registry.gauge(
            "fleet.messages", help="messages carried over all channels")

    def record(self, op: str, reason: str, latency_s: float,
               finished_s: float) -> None:
        """Account one completed interaction."""
        self._outcomes.inc(op=op, reason=reason)
        self._latency.observe(latency_s, op=op)
        self.horizon_s = max(self.horizon_s, finished_s)

    # ------------------------------------------------- registry-backed state
    @property
    def outcomes(self) -> Counter:
        """``(op, reason)`` -> count, e.g. ``("request", "ok")``."""
        return Counter({(labels["op"], labels["reason"]): value
                        for labels, value in self._outcomes.series()})

    @property
    def latency(self) -> dict[str, HistogramSeries]:
        """Per-op latency distributions."""
        return {labels["op"]: series
                for labels, series in self._latency.series()}

    @property
    def horizon_s(self) -> float:
        """Virtual time of the latest interaction completion."""
        return self._horizon.value(default=0.0)

    @horizon_s.setter
    def horizon_s(self, value: float) -> None:
        self._horizon.set(float(value))

    @property
    def bytes_to_server(self) -> int:
        return self._bytes.value(direction="to_server")

    @bytes_to_server.setter
    def bytes_to_server(self, value: int) -> None:
        self._bytes.set(value, direction="to_server")

    @property
    def bytes_to_device(self) -> int:
        return self._bytes.value(direction="to_device")

    @bytes_to_device.setter
    def bytes_to_device(self, value: int) -> None:
        self._bytes.set(value, direction="to_device")

    @property
    def messages(self) -> int:
        return self._messages.value()

    @messages.setter
    def messages(self, value: int) -> None:
        self._messages.set(value)

    # -------------------------------------------------------------- queries
    @property
    def interactions(self) -> int:
        """Total interactions recorded (any outcome)."""
        return self._outcomes.total()

    def count(self, op: str, reason: str | None = None) -> int:
        """Interactions for one op, optionally restricted to a reason."""
        if reason is not None:
            return self._outcomes.value(op=op, reason=reason)
        return sum(value for labels, value in self._outcomes.series()
                   if labels["op"] == op)

    @property
    def throughput_rps(self) -> float:
        """Completed interactions per simulated second."""
        if self.horizon_s <= 0:
            return 0.0
        return self.interactions / self.horizon_s

    def outcome_rows(self) -> list[tuple[str, str, int]]:
        """Sorted ``(op, reason, count)`` rows for rendering."""
        outcomes = self.outcomes
        return [(op, reason, outcomes[(op, reason)])
                for op, reason in sorted(outcomes)]

    def latency_rows(self) -> list[tuple[str, int, float, float, float]]:
        """Sorted ``(op, count, mean_s, p50_s, p99_s)`` rows."""
        return [(op, hist.count, hist.mean, hist.percentile(50),
                 hist.percentile(99))
                for op, hist in sorted(self.latency.items())]
