"""The FLock trusted module (paper Fig. 5): controllers, processors, storage.

Behavioural model of the biometric touch-display ASIC: fingerprint
controller + processor, display repeater + frame hash engine, crypto
processor, protected SRAM/Flash, and the :class:`FlockModule` composition
that enforces the trusted boundary the remote protocols rely on.
"""

from .storage import (
    ProtectedFlash,
    PublicServiceView,
    ServiceRecord,
    SramModel,
    StorageError,
)
from .display import DisplayRepeater, Frame, FrameHashEngine
from .fingerprint_controller import FingerprintController, TouchCapture
from .fingerprint_processor import (
    AuthDecision,
    ImageFingerprintProcessor,
    ModeledFingerprintProcessor,
)
from .crypto_processor import CryptoOpCosts, CryptoProcessor
from .module import FlockError, FlockModule, TouchAuthEvent
from .host_interface import HostCommandError, HostCommandRecord, HostInterface
from .rng import SimulationRng

__all__ = [
    "ProtectedFlash", "PublicServiceView", "ServiceRecord", "SramModel",
    "StorageError",
    "DisplayRepeater", "Frame", "FrameHashEngine",
    "FingerprintController", "TouchCapture",
    "AuthDecision", "ImageFingerprintProcessor", "ModeledFingerprintProcessor",
    "CryptoOpCosts", "CryptoProcessor",
    "FlockError", "FlockModule", "TouchAuthEvent",
    "HostCommandError", "HostCommandRecord", "HostInterface",
    "SimulationRng",
]
