"""FLock on-chip protected storage (Fig. 5: SRAM + Flash).

The flash holds one record per bound web service — exactly the record of
Fig. 9 step 2: domain, account, the per-service (public, private) key pair,
the fingerprint template, and the server's public key.  The record store
enforces the trusted boundary at the type level: ``export_public_view``
returns only the fields the host is ever allowed to see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import RsaPrivateKey, RsaPublicKey
from repro.fingerprint import FingerprintTemplate

__all__ = ["ServiceRecord", "PublicServiceView", "ProtectedFlash", "SramModel", "StorageError"]


class StorageError(Exception):
    """Raised on storage misuse (missing/duplicate records, capacity)."""


@dataclass(frozen=True)
class PublicServiceView:
    """The only service-record fields that may cross the host interface."""

    domain: str
    account: str
    public_key: RsaPublicKey


@dataclass
class ServiceRecord:
    """One bound web service (paper Fig. 9, 'User - Domain Record')."""

    domain: str
    account: str
    key_pair: RsaPrivateKey
    fingerprint: FingerprintTemplate
    server_public_key: RsaPublicKey

    def public_view(self) -> PublicServiceView:
        """The host-safe projection of this record."""
        return PublicServiceView(
            domain=self.domain, account=self.account,
            public_key=self.key_pair.public_key,
        )


class ProtectedFlash:
    """Non-volatile record store inside the FLock trusted boundary."""

    def __init__(self, capacity_records: int = 64) -> None:
        if capacity_records < 1:
            raise ValueError("flash needs capacity for at least one record")
        self.capacity_records = int(capacity_records)
        self._records: dict[str, ServiceRecord] = {}
        self._device_template: FingerprintTemplate | None = None

    # -- device-local enrollment (used by local identity management) -------
    def store_device_template(self, template: FingerprintTemplate) -> None:
        """Persist the device-unlock fingerprint template."""
        self._device_template = template

    def device_template(self) -> FingerprintTemplate:
        """The device-unlock template; StorageError if none enrolled."""
        if self._device_template is None:
            raise StorageError("no device fingerprint template enrolled")
        return self._device_template

    @property
    def has_device_template(self) -> bool:
        """Whether a device-unlock template is stored."""
        return self._device_template is not None

    # -- per-service records ------------------------------------------------
    def add_record(self, record: ServiceRecord) -> None:
        """Store a new service record; rejects duplicates and overflow."""
        if record.domain in self._records:
            raise StorageError(f"record for {record.domain!r} already exists")
        if len(self._records) >= self.capacity_records:
            raise StorageError("flash capacity exhausted")
        self._records[record.domain] = record

    def record(self, domain: str) -> ServiceRecord:
        """Fetch the record for a domain; StorageError if absent."""
        try:
            return self._records[domain]
        except KeyError:
            raise StorageError(f"no record for domain {domain!r}") from None

    def has_record(self, domain: str) -> bool:
        """Whether a record exists for a domain."""
        return domain in self._records

    def remove_record(self, domain: str) -> None:
        """Delete the record for a domain; StorageError if absent."""
        if domain not in self._records:
            raise StorageError(f"no record for domain {domain!r}")
        del self._records[domain]

    def domains(self) -> list[str]:
        """Sorted list of bound domains."""
        return sorted(self._records)

    def all_records(self) -> list[ServiceRecord]:
        """Internal-only iteration (identity transfer packs these)."""
        return [record for _, record in sorted(self._records.items())]


class SramModel:
    """Bounded working memory; captures oversized-frame handling."""

    def __init__(self, capacity_bytes: int = 1 << 20) -> None:
        if capacity_bytes < 1:
            raise ValueError("SRAM capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        self.peak_bytes = 0

    def allocate(self, n_bytes: int) -> None:
        """Reserve working memory; StorageError when exhausted."""
        if n_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.used_bytes + n_bytes > self.capacity_bytes:
            raise StorageError(
                f"SRAM exhausted: {self.used_bytes} + {n_bytes} "
                f"> {self.capacity_bytes}")
        self.used_bytes += n_bytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def release(self, n_bytes: int) -> None:
        """Return previously allocated working memory."""
        if n_bytes < 0 or n_bytes > self.used_bytes:
            raise ValueError("invalid release size")
        self.used_bytes -= n_bytes
