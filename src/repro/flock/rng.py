"""The RNG the host injects into FLock's *physics* simulation.

Two kinds of randomness meet inside the module and must never be
confused:

- **Key material** comes exclusively from the module's own
  :class:`repro.crypto.HmacDrbg` (the stand-in for the ASIC's TRNG).
  TRUST-lint rule CD201 bans stdlib ``random`` here outright.
- **Physical noise** — where the fingertip lands, sensor noise, modeled
  match scores — is part of the *simulation*, not the device, so the host
  harness injects it per experiment for reproducibility.

:class:`SimulationRng` is the structural type of that injected generator:
the subset of the ``numpy.random.Generator`` API the FLock data path and
its downstream fingerprint models actually draw from.  Any
``numpy.random.default_rng(seed)`` instance satisfies it; tests can
substitute a recorded or constant generator.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["SimulationRng"]


@runtime_checkable
class SimulationRng(Protocol):
    """Structural protocol for the injected simulation generator."""

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Uniform floats in [low, high)."""
        ...

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian samples."""
        ...

    def standard_normal(self, size=None):
        """Standard-normal samples."""
        ...

    def random(self, size=None):
        """Uniform floats in [0, 1)."""
        ...

    def integers(self, low, high=None, size=None):
        """Uniform integers."""
        ...

    def beta(self, a: float, b: float, size=None):
        """Beta-distributed samples (calibrated score models)."""
        ...
