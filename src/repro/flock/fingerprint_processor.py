"""Fingerprint processor: quality gate + template matching (Fig. 5/6).

Two interchangeable implementations share the :class:`AuthDecision`
interface:

- :class:`ImageFingerprintProcessor` runs the full image pipeline on every
  capture (extraction + minutiae matching against the stored template) —
  the honest path, used by the matcher benchmarks and the examples.
- :class:`ModeledFingerprintProcessor` draws match scores from a calibrated
  score model — the fast path for experiments simulating tens of thousands
  of touches (E1/E6/E10), where only score *distributions* matter.  The
  substitution is documented in DESIGN.md.

Both account a modeled processing latency so end-to-end response numbers
include matching, not just sensor scan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fingerprint import (
    CalibratedScoreModel,
    FingerprintTemplate,
    MinutiaeMatcher,
    QualityGate,
    QualityReport,
    assess_quality,
    minutiae_from_image,
)
from repro.fingerprint.enhancement import minutiae_with_enhancement
from repro.obs import NOOP

from .fingerprint_controller import TouchCapture
from .rng import SimulationRng

__all__ = [
    "AuthDecision",
    "ImageFingerprintProcessor",
    "ModeledFingerprintProcessor",
]

#: Modeled minutiae-extraction throughput: cells processed per second by the
#: embedded fingerprint processor (enhancement + thinning dominate).
EXTRACTION_CELLS_PER_S = 40_000_000

#: Modeled per-comparison matching time (alignment hypotheses on an
#: embedded core).
MATCH_TIME_S = 0.004


def _minutiae_digest(minutiae, backend=None) -> bytes:
    """Canonical SHA-256 digest of a minutiae set (match-cache key).

    Position/direction floats are serialized via ``repr`` (exact), so two
    digests are equal iff the two sets would match identically.  The digest
    is backend-independent (every registered backend's SHA-256 agrees), so
    cache keys computed under different engines collide correctly.
    """
    if backend is None:
        from repro.crypto import default_backend
        backend = default_backend()
    parts = [f"{m.row!r},{m.col!r},{m.direction!r},{m.kind}"
             for m in minutiae]
    return backend.sha256("|".join(parts).encode("utf-8"))


def _annotate_decision(span, decision: "AuthDecision") -> None:
    """Stamp a match span with the decision's observable outcome."""
    span.set_attribute("quality_ok", decision.quality_ok)
    span.set_attribute("score", decision.score)
    span.set_attribute("accepted", decision.accepted)
    span.set_attribute("processing_time_s", decision.processing_time_s)


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of authenticating one capture."""

    quality_ok: bool
    quality: QualityReport | None
    score: float
    accepted: bool
    processing_time_s: float

    @property
    def contributed(self) -> bool:
        """Did this capture reach the matcher (i.e. count toward risk)?"""
        return self.quality_ok


class ImageFingerprintProcessor:
    """Full-pipeline processor matching against the enrolled template set.

    A user enrolls at least one finger; additional fingers (the other
    thumb, an index finger for two-handed use) can be added and a capture
    authenticates if it matches *any* enrolled template — the natural
    multi-finger extension of the paper's design.
    """

    def __init__(self, template: FingerprintTemplate,
                 accept_threshold: float = 0.10,
                 quality_threshold: float = 0.45,
                 matcher: MinutiaeMatcher | None = None,
                 use_enhancement: bool = True,
                 enhanced_threshold: float = 0.16) -> None:
        if not 0.0 <= accept_threshold <= 1.0:
            raise ValueError("accept threshold must be in [0, 1]")
        if enhanced_threshold < accept_threshold:
            raise ValueError(
                "the enhanced-pass threshold must be at least the raw "
                "threshold (enhancement slightly inflates impostor scores)")
        self.templates = [template]
        self.accept_threshold = float(accept_threshold)
        self.gate = QualityGate(threshold=quality_threshold)
        self.matcher = matcher if matcher is not None else MinutiaeMatcher()
        self.use_enhancement = bool(use_enhancement)
        self.enhanced_threshold = float(enhanced_threshold)
        self.enhancement_passes = 0
        #: Optional duck-typed memoizer (``memoize(kind, key, compute)``)
        #: for template-match scores, keyed on (template, probe) minutiae
        #: digests.  Matching is a pure function of the two minutiae sets,
        #: so a cached score is exactly the recomputed score.
        self.match_cache = None
        #: Instrumentation bundle (re-wired by ``FlockModule.obs``).
        self.obs = NOOP

    @property
    def template(self) -> FingerprintTemplate:
        """The primary (first-enrolled) template."""
        return self.templates[0]

    def add_template(self, template: FingerprintTemplate) -> None:
        """Enroll an additional finger."""
        if template.finger_id in [t.finger_id for t in self.templates]:
            raise ValueError(
                f"finger {template.finger_id!r} is already enrolled")
        self.templates.append(template)

    def _match_score(self, template: FingerprintTemplate,
                     minutiae, probe_digest: bytes | None) -> float:
        """Score one probe against one template, via the cache if set."""
        if self.match_cache is None or probe_digest is None:
            return self.matcher.match(template.minutiae, minutiae).score
        return self.match_cache.memoize(
            "template-match",
            _minutiae_digest(template.minutiae) + probe_digest,
            lambda: self.matcher.match(template.minutiae, minutiae).score)

    def _best_score(self, minutiae) -> float:
        """Best score of one probe across every enrolled template."""
        probe_digest = (_minutiae_digest(minutiae)
                        if self.match_cache is not None else None)
        return max(self._match_score(template, minutiae, probe_digest)
                   for template in self.templates)

    def authenticate(self, capture: TouchCapture,
                     rng: SimulationRng) -> AuthDecision:
        """Gate on quality, then extract and match against every template.
        ``rng`` unused here (signature shared with the modeled processor)."""
        with self.obs.tracer.span("flock.match", processor="image") as span:
            decision = self._authenticate(capture, rng)
            _annotate_decision(span, decision)
        return decision

    def _authenticate(self, capture: TouchCapture,
                      rng: SimulationRng) -> AuthDecision:
        quality_ok, report = self.gate.evaluate(capture.impression)
        extraction_time = capture.hardware.cells_sensed / EXTRACTION_CELLS_PER_S
        if not quality_ok:
            return AuthDecision(False, report, 0.0, False, extraction_time)
        minutiae = minutiae_from_image(capture.impression.image,
                                       capture.impression.mask)
        if len(minutiae) < 4:
            # Too few features to attempt a match: treated as a quality
            # rejection (Fig. 6 "incomplete data"), not an impostor signal.
            return AuthDecision(False, report, 0.0, False, extraction_time)
        best_score = self._best_score(minutiae)
        total_time = extraction_time + MATCH_TIME_S * len(self.templates)
        accepted = best_score >= self.accept_threshold

        if not accepted and self.use_enhancement:
            # Second chance: contextual Gabor enhancement recovers ridge
            # structure on marginal captures (light pressure, noise).  The
            # enhanced pass uses a stricter threshold — enhancement also
            # hallucinates some structure for impostors.
            enhanced = minutiae_with_enhancement(capture.impression.image,
                                                 capture.impression.mask)
            if len(enhanced) >= 4:
                self.enhancement_passes += 1
                enhanced_score = self._best_score(enhanced)
                total_time += (extraction_time
                               + MATCH_TIME_S * len(self.templates))
                if enhanced_score >= self.enhanced_threshold:
                    best_score = enhanced_score
                    accepted = True

        return AuthDecision(
            quality_ok=True, quality=report, score=best_score,
            accepted=accepted,
            processing_time_s=total_time,
        )


class ModeledFingerprintProcessor:
    """Statistical processor: scores drawn from a calibrated model.

    ``genuine`` is decided by comparing the touching finger's id with the
    enrolled finger id — the physical ground truth the simulation knows.
    Quality gating is driven by the capture's measured quality, matching
    the image processor's gate semantics.
    """

    def __init__(self, enrolled_finger_id: str,
                 score_model: CalibratedScoreModel,
                 accept_threshold: float = 0.25,
                 quality_threshold: float = 0.45) -> None:
        self.enrolled_finger_id = enrolled_finger_id
        self.score_model = score_model
        self.accept_threshold = float(accept_threshold)
        self.quality_threshold = float(quality_threshold)
        #: Instrumentation bundle (re-wired by ``FlockModule.obs``).
        self.obs = NOOP

    def authenticate(self, capture: TouchCapture,
                     rng: SimulationRng) -> AuthDecision:
        """Quality-gate and score one capture against the model."""
        with self.obs.tracer.span("flock.match", processor="modeled") as span:
            decision = self._authenticate(capture, rng)
            _annotate_decision(span, decision)
        return decision

    def _authenticate(self, capture: TouchCapture,
                      rng: SimulationRng) -> AuthDecision:
        report = assess_quality(capture.impression)
        extraction_time = capture.hardware.cells_sensed / EXTRACTION_CELLS_PER_S
        if report.score < self.quality_threshold:
            return AuthDecision(False, report, 0.0, False, extraction_time)
        genuine = capture.touch.event.finger_id == self.enrolled_finger_id
        score = self.score_model.sample(genuine, rng)
        return AuthDecision(
            quality_ok=True, quality=report, score=score,
            accepted=score >= self.accept_threshold,
            processing_time_s=extraction_time + MATCH_TIME_S,
        )
