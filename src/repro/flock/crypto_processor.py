"""FLock crypto processor: key generation, signing, sealing (Fig. 5).

Wraps the :mod:`repro.crypto` primitives with (i) the module's private DRBG
— the stand-in for the ASIC's TRNG — and (ii) modeled operation latencies,
so protocol benchmarks can report a hardware-credible cost breakdown.
Latencies are round numbers for a small embedded crypto core.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.crypto import (
    CryptoBackend,
    HmacDrbg,
    RsaPrivateKey,
    RsaPublicKey,
    default_backend,
)

__all__ = ["CryptoOpCosts", "CryptoProcessor"]


@dataclass(frozen=True)
class CryptoOpCosts:
    """Modeled latencies (seconds) for the embedded crypto core."""

    keygen_s: float = 0.150  # RSA-1024 keypair on a small core
    sign_s: float = 0.008
    verify_s: float = 0.0006
    rsa_encrypt_s: float = 0.0006
    rsa_decrypt_s: float = 0.008
    hash_per_kb_s: float = 0.00001
    mac_per_kb_s: float = 0.00001


@dataclass
class CryptoProcessor:
    """The crypto engine inside one FLock module."""

    rng: HmacDrbg
    costs: CryptoOpCosts = field(default_factory=CryptoOpCosts)
    key_bits: int = 1024
    time_spent_s: float = 0.0
    ops: "Counter[str]" = field(default_factory=Counter)
    #: Optional supplier of pre-generated key pairs.  Fleet-scale runs
    #: amortize the dominant RSA key-generation cost by injecting a pool
    #: here; the *modeled* keygen latency is still accounted, so reported
    #: timings are unchanged — only host wall-clock shrinks.
    keypair_source: "Callable[[], RsaPrivateKey] | None" = None
    #: The crypto engine executing the primitives.  Modeled latencies
    #: above are what benchmarks report; the backend only moves host
    #: wall-clock, never any output byte.
    backend: CryptoBackend = field(default_factory=default_backend)

    def _account(self, op: str, seconds: float) -> None:
        self.time_spent_s += seconds
        self.ops[op] += 1

    def generate_service_keypair(self) -> RsaPrivateKey:
        """Fresh per-service key pair (Fig. 9 step 2)."""
        self._account("keygen", self.costs.keygen_s)
        if self.keypair_source is not None:
            return self.keypair_source()
        return self.backend.generate_keypair(self.rng, bits=self.key_bits)

    def sign(self, key: RsaPrivateKey, message: bytes) -> bytes:
        """RSASSA signature with latency accounting."""
        self._account("sign", self.costs.sign_s)
        return self.backend.rsa_sign(key, message)

    def verify(self, key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
        """Signature verification with latency accounting."""
        self._account("verify", self.costs.verify_s)
        return self.backend.rsa_verify(key, message, signature)

    def rsa_encrypt(self, key: RsaPublicKey, plaintext: bytes) -> bytes:
        """RSAES encryption with latency accounting."""
        self._account("rsa_encrypt", self.costs.rsa_encrypt_s)
        return self.backend.rsa_encrypt(key, plaintext, self.rng)

    def rsa_decrypt(self, key: RsaPrivateKey, ciphertext: bytes) -> bytes:
        """RSAES decryption with latency accounting."""
        self._account("rsa_decrypt", self.costs.rsa_decrypt_s)
        return self.backend.rsa_decrypt(key, ciphertext)

    def hash(self, data: bytes) -> bytes:
        """SHA-256 with size-proportional latency accounting."""
        self._account("hash", self.costs.hash_per_kb_s * (len(data) / 1024 + 1))
        return self.backend.sha256(data)

    def mac(self, key: bytes, data: bytes) -> bytes:
        """HMAC-SHA256 with size-proportional latency accounting."""
        self._account("mac", self.costs.mac_per_kb_s * (len(data) / 1024 + 1))
        return self.backend.hmac_sha256(key, data)

    def random_bytes(self, n: int) -> bytes:
        """Fresh bytes from the module's DRBG (TRNG stand-in)."""
        return self.rng.generate(n)

    def new_session_key(self) -> bytes:
        """32-byte session key for the Fig. 10 login step."""
        return self.random_bytes(32)
