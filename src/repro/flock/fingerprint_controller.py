"""Fingerprint controller: touch coordinates -> sensor capture (Fig. 4/6).

On each located touch the controller:

1. finds the placed sensor (if any) whose footprint usably covers the touch
   (Fig. 6 decision 1: "requires data capture outside the areas of
   fingerprint sensors?");
2. translates the panel (x, y) into sensor (row, col) cell addresses;
3. renders what the finger's skin actually presents to those cells (the
   physical contact, via the impression model); and
4. drives the array to capture a window around the touch point with
   selective row/column addressing, returning the binary image plus the
   modeled capture latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fingerprint import CaptureCondition, Impression, MasterFingerprint, render_impression
from repro.hardware import (
    CaptureResult,
    CaptureWindow,
    LocatedTouch,
    PlacedSensor,
    SensorArray,
    SensorLayout,
)
from repro.obs import Instrumentation, NOOP

from .rng import SimulationRng

__all__ = ["TouchCapture", "FingerprintController"]

#: Fingertip contact patch radius on the sensor surface, in mm.
CONTACT_RADIUS_MM = 4.0

#: How close to a sensor edge a touch centre may land and still be worth
#: capturing.  Smaller than the contact radius: a partially-overhanging
#: contact still yields a (smaller, lower-quality) capture, and the quality
#: gate — not geometry — decides whether it is usable.
CAPTURE_MARGIN_MM = 2.0

#: The panel's location latency: the skin keeps moving for this long
#: between first contact and the sensor scan, so fast touches smear.
PANEL_SETTLE_S = 0.004


@dataclass(frozen=True)
class TouchCapture:
    """Everything the controller hands to the fingerprint processor."""

    sensor: PlacedSensor
    hardware: CaptureResult
    impression: Impression  # the analog skin contact (pre-comparator)
    capture_time_s: float  # sensor scan latency (modeled)
    touch: LocatedTouch


class FingerprintController:
    """Drives the sensors of one layout; one SensorArray per placed sensor."""

    def __init__(self, layout: SensorLayout, margin_mm: float = CAPTURE_MARGIN_MM,
                 obs: Instrumentation | None = None) -> None:
        self.layout = layout
        self.margin_mm = float(margin_mm)
        # Indexed by layout position, not object identity: layouts forbid
        # overlapping sensors, so positions are unique — and positional
        # keys survive deepcopy (the fleet factory clones whole devices).
        self._arrays = [SensorArray(s.spec) for s in layout.sensors]
        self.touches_routed = 0
        self.touches_captured = 0
        self.obs = obs if obs is not None else NOOP

    @property
    def obs(self) -> Instrumentation:
        """The instrumentation bundle, shared with every sensor array."""
        return self._obs

    @obs.setter
    def obs(self, value: Instrumentation) -> None:
        self._obs = value
        for array in self._arrays:
            array.obs = value

    def _array_for(self, sensor: PlacedSensor) -> SensorArray:
        return self._arrays[self.layout.sensors.index(sensor)]

    def sensor_for(self, touch: LocatedTouch) -> PlacedSensor | None:
        """Fig. 6 decision 1: the sensor usably covering this touch."""
        return self.layout.sensor_at(touch.x_mm, touch.y_mm,
                                     margin_mm=self.margin_mm)

    def capture(self, touch: LocatedTouch, master: MasterFingerprint,
                rng: SimulationRng) -> TouchCapture | None:
        """Opportunistically capture the fingerprint under a touch.

        Returns None when no sensor covers the touch (the controller "keeps
        waiting for future touch events").  ``master`` is the ground-truth
        finger of whoever is touching — the simulation's physical reality.
        """
        self.touches_routed += 1
        sensor = self.sensor_for(touch)
        if sensor is None:
            return None

        spec = sensor.spec
        cell_row, cell_col = sensor.cell_address(touch.x_mm, touch.y_mm)
        cells_per_mm = 1000.0 / spec.cell_um
        half_extent = max(int(round(CONTACT_RADIUS_MM * cells_per_mm)), 1)
        window = CaptureWindow.around(cell_row, cell_col, half_extent,
                                      spec.rows, spec.cols)

        # Physical contact: a random region of the fingertip lands on the
        # sensor; speed and pressure come from the touch dynamics.
        # Light touches contact less skin (smaller patch, more dry-contact
        # dropout) and fast touches smear over the panel's settle window —
        # this is what makes deliberate low-quality evasion *physically*
        # produce discardable captures (paper §IV-A challenge 1).
        event = touch.event
        contact_scale = min(0.55 + 0.9 * event.pressure, 1.1)
        dropout = 0.02 + max(0.0, 0.30 - event.pressure) * 0.5
        scan_time = (PANEL_SETTLE_S
                     + self._array_for(sensor).capture_time_s(window))
        condition = CaptureCondition(
            center=(float(rng.uniform(0.3, 0.7) * master.shape[0]),
                    float(rng.uniform(0.3, 0.7) * master.shape[1])),
            radius=CONTACT_RADIUS_MM * cells_per_mm * contact_scale,
            rotation_deg=float(rng.uniform(-25.0, 25.0)),
            pressure=event.pressure,
            motion_px=min(event.speed_mm_s * cells_per_mm * scan_time, 12.0),
            noise=0.05,
            dropout=min(dropout, 0.5),
        )
        array = self._array_for(sensor)
        impression = render_impression(
            master, condition, rng,
            output_shape=(window.n_rows, window.n_cols))

        # Drive the array over the window; the analog cell values are the
        # impression registered into the full cell grid.
        cell_image = np.full((spec.rows, spec.cols), 0.5)
        cell_image[window.row0:window.row1, window.col0:window.col1] = \
            impression.image
        hardware = array.capture(cell_image, window)

        self.touches_captured += 1
        return TouchCapture(
            sensor=sensor,
            hardware=hardware,
            impression=impression,
            capture_time_s=hardware.time_s,
            touch=touch,
        )

    @property
    def capture_opportunity_rate(self) -> float:
        """Fraction of routed touches that landed on a sensor."""
        if self.touches_routed == 0:
            return 0.0
        return self.touches_captured / self.touches_routed
