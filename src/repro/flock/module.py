"""The FLock module: composition of the Fig. 5 blocks + trusted-boundary API.

A ``FlockModule`` owns a unique built-in device key pair, the CA's public
key, protected storage, the display repeater, the fingerprint data path and
the crypto processor.  Its public methods are the *only* operations the
untrusted host can request; private keys, fingerprint templates and raw
captures never appear in a return value (the identity-transfer bundle is the
sole exception, and it leaves encrypted under the receiving device's key).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto import (
    Certificate,
    CertificateError,
    CryptoBackend,
    RsaPrivateKey,
    RsaPublicKey,
    default_backend,
)
from repro.fingerprint import FingerprintTemplate, MasterFingerprint
from repro.hardware import LocatedTouch, SensorLayout
from repro.obs import Instrumentation, NOOP

from .crypto_processor import CryptoProcessor
from .display import DisplayRepeater, Frame
from .fingerprint_controller import FingerprintController, TouchCapture
from .fingerprint_processor import (
    AuthDecision,
    ImageFingerprintProcessor,
    ModeledFingerprintProcessor,
)
from .rng import SimulationRng
from .storage import ProtectedFlash, PublicServiceView, ServiceRecord, SramModel, StorageError

__all__ = ["FlockError", "TouchAuthEvent", "FlockModule"]


class FlockError(Exception):
    """Raised on trusted-boundary violations or protocol misuse."""


@dataclass(frozen=True)
class TouchAuthEvent:
    """One touch's journey through the Fig. 6 pipeline (host-visible)."""

    captured: bool  # did the touch land on a sensor?
    decision: AuthDecision | None  # None when not captured
    capture_time_s: float  # sensor scan latency (0 when not captured)

    @property
    def verified(self) -> bool:
        """Captured, quality-passed AND matched the enrolled template."""
        return (self.captured and self.decision is not None
                and self.decision.accepted)


class FlockModule:
    """One FLock instance soldered to one mobile device."""

    def __init__(self, device_id: str, seed: bytes,
                 layout: SensorLayout,
                 processor_mode: str = "image",
                 key_bits: int = 1024,
                 obs: Instrumentation | None = None,
                 backend: CryptoBackend | None = None) -> None:
        if processor_mode not in ("image", "modeled"):
            raise ValueError("processor_mode must be 'image' or 'modeled'")
        self.device_id = device_id
        self.processor_mode = processor_mode
        self._obs = obs if obs is not None else NOOP
        self.backend = backend if backend is not None else default_backend()
        self._drbg = self.backend.make_drbg(
            seed, personalization=device_id.encode())
        self.crypto = CryptoProcessor(rng=self._drbg, key_bits=key_bits,
                                      backend=self.backend)
        self._device_key: RsaPrivateKey = self.backend.generate_keypair(
            self._drbg, bits=key_bits)
        self.flash = ProtectedFlash()
        self.sram = SramModel()
        self.display = DisplayRepeater(backend=self.backend)
        self.controller = FingerprintController(layout, obs=self._obs)
        self._local_processor: ImageFingerprintProcessor | ModeledFingerprintProcessor | None = None
        self._ca_public_key: RsaPublicKey | None = None
        self.certificate: Certificate | None = None
        self._pending_bindings: dict[str, tuple[RsaPrivateKey, RsaPublicKey, str]] = {}
        self._session_keys: dict[str, bytes] = {}
        self._pending_challenges: dict[str, tuple[bytes, int]] = {}
        self._verified_touch_count = 0

    # --------------------------------------------------------- observability
    @property
    def obs(self) -> Instrumentation:
        """Instrumentation bundle, shared down into controller + processor.

        Assigning a live bundle (``flock.obs = Instrumentation.live()``)
        re-wires the whole capture/match path in one step, so a composition
        root can instrument an already-built device.
        """
        return self._obs

    @obs.setter
    def obs(self, value: Instrumentation) -> None:
        self._obs = value
        self.controller.obs = value
        if self._local_processor is not None:
            self._local_processor.obs = value

    # ------------------------------------------------------------------ keys
    @property
    def public_key(self) -> RsaPublicKey:
        """The device's built-in public key (safe to disclose)."""
        return self._device_key.public_key

    def install_ca(self, ca_public_key: RsaPublicKey) -> None:
        """Burn the CA root into the module (done at manufacture)."""
        self._ca_public_key = ca_public_key

    def set_certificate(self, certificate: Certificate) -> None:
        """Install this device's CA-issued certificate."""
        if certificate.public_key != self.public_key:
            raise FlockError("certificate does not match the device key")
        self.certificate = certificate

    def _require_ca(self) -> RsaPublicKey:
        if self._ca_public_key is None:
            raise FlockError("no CA public key installed")
        return self._ca_public_key

    # ----------------------------------------------------- local enrollment
    def enroll_local_user(self, template: FingerprintTemplate,
                          score_model=None,
                          accept_threshold: float | None = None) -> None:
        """Store the device-unlock template and build the local processor."""
        self.flash.store_device_template(template)
        if self.processor_mode == "image":
            kwargs = {}
            if accept_threshold is not None:
                kwargs["accept_threshold"] = accept_threshold
            self._local_processor = ImageFingerprintProcessor(template, **kwargs)
        else:
            if score_model is None:
                raise FlockError("modeled processor requires a score model")
            kwargs = {}
            if accept_threshold is not None:
                kwargs["accept_threshold"] = accept_threshold
            self._local_processor = ModeledFingerprintProcessor(
                template.finger_id, score_model, **kwargs)
        self._local_processor.obs = self._obs

    @property
    def is_enrolled(self) -> bool:
        """Whether a local user template is enrolled."""
        return self._local_processor is not None

    def install_verification_cache(self, cache) -> None:
        """Attach a duck-typed match-score memoizer to the local processor.

        ``cache`` must expose ``memoize(kind, key, compute)``.  Only the
        image processor matches minutiae (a pure function of the two sets),
        so only it benefits; the modeled processor draws random scores and
        is left untouched.
        """
        if self._local_processor is not None and hasattr(
                self._local_processor, "match_cache"):
            self._local_processor.match_cache = cache

    def enroll_additional_finger(self, template: FingerprintTemplate) -> None:
        """Add another finger to the local identity (same user).

        Only the image-mode processor supports a template set; the modeled
        processor identifies the user by finger id and would need one
        score model per finger.
        """
        if self._local_processor is None:
            raise FlockError("enroll a primary finger first")
        if not isinstance(self._local_processor, ImageFingerprintProcessor):
            raise FlockError(
                "additional fingers require the image-mode processor")
        self._local_processor.add_template(template)

    @property
    def enrolled_finger_ids(self) -> list[str]:
        """Finger ids of every enrolled template."""
        if self._local_processor is None:
            return []
        if isinstance(self._local_processor, ImageFingerprintProcessor):
            return [t.finger_id for t in self._local_processor.templates]
        return [self._local_processor.enrolled_finger_id]

    # -------------------------------------------------- the Fig. 6 pipeline
    def handle_touch(self, touch: LocatedTouch, master: MasterFingerprint,
                     rng: SimulationRng) -> TouchAuthEvent:
        """Run one touch through capture -> quality -> match.

        ``master`` is the ground-truth finger physically touching the panel
        (the simulation's reality — it never crosses into any protocol
        message).
        """
        if self._local_processor is None:
            raise FlockError("no user enrolled")
        with self._obs.tracer.span("flock.touch",
                                   device=self.device_id) as span:
            capture: TouchCapture | None = self.controller.capture(
                touch, master, rng)
            if capture is None:
                span.set_attribute("captured", False)
                event = TouchAuthEvent(captured=False, decision=None,
                                       capture_time_s=0.0)
            else:
                decision = self._local_processor.authenticate(capture, rng)
                if decision.accepted:
                    self._verified_touch_count += 1
                span.set_attribute("captured", True)
                span.set_attribute("verified", decision.accepted)
                event = TouchAuthEvent(captured=True, decision=decision,
                                       capture_time_s=capture.capture_time_s)
        self._obs.metrics.counter(
            "flock.touches", help="touches through the Fig. 6 pipeline").inc(
            captured=event.captured, verified=event.verified)
        return event

    # -------------------------------------------------- service bindings
    def begin_service_binding(self, domain: str, account: str,
                              server_cert: Certificate, now: int) -> RsaPublicKey:
        """Fig. 9 step 2 part 1: verify the server cert, mint a key pair.

        Returns the fresh public key (pk_A); the private half stays pending
        inside the module until :meth:`complete_service_binding`.
        """
        ca_key = self._require_ca()
        server_cert.verify(ca_key, now, expected_role="web-server",
                           backend=self.backend)
        if server_cert.subject != domain:
            raise CertificateError(
                f"certificate subject {server_cert.subject!r} does not match "
                f"domain {domain!r}")
        if self.flash.has_record(domain):
            raise FlockError(f"already bound to {domain!r}")
        key_pair = self.crypto.generate_service_keypair()
        self._pending_bindings[domain] = (key_pair, server_cert.public_key,
                                          account)
        return key_pair.public_key

    def complete_service_binding(
            self, domain: str,
            template: FingerprintTemplate | None = None) -> PublicServiceView:
        """Fig. 9 step 2 part 2: store the record after fingerprint capture.

        ``template`` defaults to the enrolled device template; hosts
        should omit it so the raw template never crosses out of the
        module just to be handed straight back in.
        """
        if domain not in self._pending_bindings:
            raise FlockError(f"no pending binding for {domain!r}")
        if template is None:
            template = self.flash.device_template()
        key_pair, server_key, account = self._pending_bindings.pop(domain)
        record = ServiceRecord(
            domain=domain, account=account, key_pair=key_pair,
            fingerprint=template, server_public_key=server_key,
        )
        self.flash.add_record(record)
        return record.public_view()

    def service_view(self, domain: str) -> PublicServiceView:
        """The host-safe view of one bound service record."""
        return self.flash.record(domain).public_view()

    def unbind_service(self, domain: str) -> None:
        """Identity reset support: drop the record for a domain."""
        self.flash.remove_record(domain)

    # --------------------------------------- trusted crypto on stored keys
    def sign_as_device(self, message: bytes) -> bytes:
        """Sign with the built-in device key (never exported)."""
        return self.crypto.sign(self._device_key, message)

    def sign_for_service(self, domain: str, message: bytes) -> bytes:
        """Sign with the per-service key stored for a domain."""
        record = self.flash.record(domain)
        return self.crypto.sign(record.key_pair, message)

    def seal_for_server(self, domain: str, plaintext: bytes) -> bytes:
        """Encrypt under the bound server's public key (session-key seal)."""
        record = self.flash.record(domain)
        return self.crypto.rsa_encrypt(record.server_public_key, plaintext)

    def verify_server_signature(self, domain: str, message: bytes,
                                signature: bytes) -> bool:
        """Verify a signature under the bound server's public key."""
        record = self.flash.record(domain)
        return self.crypto.verify(record.server_public_key, message, signature)

    def mac(self, key: bytes, message: bytes) -> bytes:
        """HMAC under a caller-supplied key (not session keys)."""
        return self.crypto.mac(key, message)

    # -------------------------------------------------- session-key custody
    # The Fig. 10 session key never leaves the module: the host only ever
    # sees it sealed under the server's public key, and asks FLock to
    # MAC/verify traffic on its behalf.
    def open_session(self, domain: str) -> bytes:
        """Mint a session key for ``domain``; returns it *sealed* only."""
        record = self.flash.record(domain)
        session_key = self.crypto.new_session_key()
        self._session_keys[domain] = session_key
        return self.crypto.rsa_encrypt(record.server_public_key, session_key)

    def _session_key(self, domain: str) -> bytes:
        try:
            return self._session_keys[domain]
        except KeyError:
            raise FlockError(f"no open session for {domain!r}") from None

    #: Prefix reserved for FLock-originated attestations.  ``session_mac``
    #: refuses to MAC host-supplied messages carrying it, so the *only* way
    #: to produce a challenge attestation is :meth:`attest_challenge` —
    #: which demands a fresh verified fingerprint capture.
    ATTEST_PREFIX = b"flock-attest:"

    def session_mac(self, domain: str, message: bytes) -> bytes:
        """HMAC under the domain's session key (key never leaves)."""
        if message.startswith(self.ATTEST_PREFIX):
            raise FlockError(
                "attestation-prefixed messages can only be produced by "
                "attest_challenge")
        return self.crypto.mac(self._session_key(domain), message)

    # -------------------------------------------- re-authentication challenge
    def begin_challenge(self, domain: str, challenge_nonce: bytes) -> None:
        """Register a server-issued challenge for ``domain``.

        The attestation baseline is the current verified-touch counter:
        only a *new* verified capture after this point satisfies the
        challenge.
        """
        self._session_key(domain)  # must have an open session
        self._pending_challenges[domain] = (challenge_nonce,
                                            self._verified_touch_count)

    def attest_challenge(self, domain: str) -> bytes:
        """Produce the challenge attestation, if a fresh touch verified.

        Raises :class:`FlockError` when no verified capture happened since
        :meth:`begin_challenge` — which is exactly what an impostor or a
        touchless malware flood experiences.
        """
        if domain not in self._pending_challenges:
            raise FlockError(f"no pending challenge for {domain!r}")
        challenge_nonce, baseline = self._pending_challenges[domain]
        if self._verified_touch_count <= baseline:
            raise FlockError(
                "challenge requires a verified fingerprint capture newer "
                "than the challenge")
        del self._pending_challenges[domain]
        return self.crypto.mac(self._session_key(domain),
                               self.ATTEST_PREFIX + challenge_nonce)

    def verify_session_mac(self, domain: str, message: bytes,
                           tag: bytes) -> bool:
        """Verify a tag under the domain's session key."""
        from repro.crypto import constant_time_equal
        expected = self.crypto.mac(self._session_key(domain), message)
        return constant_time_equal(expected, tag)

    def close_session(self, domain: str) -> None:
        """Destroy the session key held for a domain."""
        self._session_keys.pop(domain, None)

    def has_session(self, domain: str) -> bool:
        """Whether a session key is currently held for a domain."""
        return domain in self._session_keys

    # ------------------------------------------------------------- display
    def show_frame(self, frame: Frame) -> bytes:
        """Route a frame through the display repeater; returns its hash."""
        self.sram.allocate(len(frame.page_content))
        try:
            return self.display.show(frame)
        finally:
            self.sram.release(len(frame.page_content))

    @property
    def current_frame_hash(self) -> bytes:
        """Hash of the frame currently displayed."""
        return self.display.current_hash

    # -------------------------------------------------- identity transfer
    def export_identity(self, new_device_key: RsaPublicKey,
                        authorizing_touch_verified: bool) -> bytes:
        """Encrypt all service records + biometric identity for a new device.

        The paper requires the user to authorize the transfer with a
        verified fingerprint on the old device; ``authorizing_touch_verified``
        is the outcome of that check (a :class:`TouchAuthEvent`'s verdict).
        """
        if not authorizing_touch_verified:
            raise FlockError("identity transfer requires fingerprint authorization")
        records = []
        for record in self.flash.all_records():
            records.append({
                "domain": record.domain,
                "account": record.account,
                "key": {"n": record.key_pair.n, "e": record.key_pair.e,
                        "d": record.key_pair.d, "p": record.key_pair.p,
                        "q": record.key_pair.q},
                "server_key": record.server_public_key.to_bytes().hex(),
                "template": record.fingerprint.to_bytes().hex(),
            })
        payload = {"records": records}
        if self.flash.has_device_template:
            payload["device_template"] = \
                self.flash.device_template().to_bytes().hex()
        plaintext = json.dumps(payload, sort_keys=True).encode()
        transfer_key = self.crypto.random_bytes(32)
        sealed_key = self.crypto.rsa_encrypt(new_device_key, transfer_key)
        body = self.backend.make_session_cipher(transfer_key).encrypt(plaintext)
        return len(sealed_key).to_bytes(4, "big") + sealed_key + body

    def import_identity(self, bundle: bytes) -> list[str]:
        """Decrypt and install a transfer bundle; returns bound domains."""
        key_len = int.from_bytes(bundle[:4], "big")
        sealed_key = bundle[4:4 + key_len]
        body = bundle[4 + key_len:]
        transfer_key = self.crypto.rsa_decrypt(self._device_key, sealed_key)
        plaintext = self.backend.make_session_cipher(transfer_key).decrypt(body)
        payload = json.loads(plaintext.decode())
        installed = []
        for item in payload["records"]:
            key = item["key"]
            record = ServiceRecord(
                domain=item["domain"],
                account=item["account"],
                key_pair=RsaPrivateKey(n=key["n"], e=key["e"], d=key["d"],
                                       p=key["p"], q=key["q"]),
                fingerprint=FingerprintTemplate.from_bytes(
                    bytes.fromhex(item["template"])),
                server_public_key=RsaPublicKey.from_bytes(
                    bytes.fromhex(item["server_key"])),
            )
            try:
                self.flash.add_record(record)
            except StorageError as exc:
                raise FlockError(f"import failed: {exc}") from exc
            installed.append(record.domain)
        if "device_template" in payload:
            template = FingerprintTemplate.from_bytes(
                bytes.fromhex(payload["device_template"]))
            if self.processor_mode == "image":
                # The biometric identity moves with the bundle: the new
                # device is immediately usable for local authentication.
                self.enroll_local_user(template)
            else:
                self.flash.store_device_template(template)
        return installed
