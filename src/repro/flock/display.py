"""Display repeater and frame hash engine (Fig. 5).

The display repeater sits between the SoC's graphics output and the panel:
every frame the user actually sees passes through it, and the frame hash
engine digests it.  Because the repeater is inside the trusted boundary,
the hash attests *what was displayed* — a malware-controlled browser can
render whatever it wants, but it cannot make FLock report the hash of a
frame that was never shown.

Frames are modeled as page content plus a view transform (scroll/zoom); the
paper notes that gestures change the displayed view, so "the frame hash code
of a displayed frame may vary", yet the set of reachable views of one page
is finite and auditable (section IV-B).  ``canonical_bytes`` makes that
concrete: hash input = page bytes + quantized viewport.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import CryptoBackend, default_backend

__all__ = ["Frame", "FrameHashEngine", "DisplayRepeater"]

#: Scroll positions quantize to this many px so the reachable-view set stays
#: finite (the server can enumerate it during audit).
SCROLL_QUANTUM_PX = 32

#: Zoom levels quantize to fixed steps for the same reason.
ZOOM_STEPS = (0.5, 0.75, 1.0, 1.5, 2.0, 3.0)


@dataclass(frozen=True)
class Frame:
    """One displayed frame: page content + view transform."""

    page_content: bytes  # the hyper-text the server sent
    scroll_px: int = 0
    zoom: float = 1.0

    def canonical_bytes(self) -> bytes:
        """Hash input: page bytes + quantized viewport parameters."""
        scroll = (self.scroll_px // SCROLL_QUANTUM_PX) * SCROLL_QUANTUM_PX
        zoom = min(ZOOM_STEPS, key=lambda step: abs(step - self.zoom))
        header = f"scroll={scroll};zoom={zoom};".encode("ascii")
        return header + self.page_content

    def reachable_views(self, max_scroll_px: int) -> list["Frame"]:
        """All quantized views of this page (the finite audit set)."""
        if max_scroll_px < 0:
            raise ValueError("max scroll must be non-negative")
        views = []
        for zoom in ZOOM_STEPS:
            for scroll in range(0, max_scroll_px + 1, SCROLL_QUANTUM_PX):
                views.append(Frame(self.page_content, scroll_px=scroll,
                                   zoom=zoom))
        return views


class FrameHashEngine:
    """Hardware hash engine; MD5 or SHA-256 per the paper's step 2."""

    #: Modeled throughput of the engine in bytes per second (a small
    #: dedicated pipeline at ~1 GB/s; used for latency accounting only).
    THROUGHPUT_BPS = 1_000_000_000

    def __init__(self, algorithm: str = "sha256",
                 backend: CryptoBackend | None = None) -> None:
        if algorithm not in ("sha256", "md5"):
            raise ValueError("frame hash algorithm must be sha256 or md5")
        self.algorithm = algorithm
        self.backend = backend if backend is not None else default_backend()
        self.frames_hashed = 0

    def hash_frame(self, frame: Frame) -> bytes:
        """Digest one frame's canonical bytes."""
        data = frame.canonical_bytes()
        self.frames_hashed += 1
        if self.algorithm == "sha256":
            return self.backend.sha256(data)
        return self.backend.md5(data)

    def hash_time_s(self, frame: Frame) -> float:
        """Modeled engine time to hash this frame."""
        return len(frame.canonical_bytes()) / self.THROUGHPUT_BPS


class DisplayRepeater:
    """Relays frames from the SoC to the panel, hashing each one.

    Keeps only the *current* frame and its hash: the attestation attached to
    a touch-triggered request is the hash of what was on screen at touch
    time.
    """

    def __init__(self, engine: FrameHashEngine | None = None,
                 backend: CryptoBackend | None = None) -> None:
        self.engine = engine if engine is not None \
            else FrameHashEngine(backend=backend)
        self._current_frame: Frame | None = None
        self._current_hash: bytes | None = None

    def show(self, frame: Frame) -> bytes:
        """Display a frame; returns its hash (also retained)."""
        self._current_frame = frame
        self._current_hash = self.engine.hash_frame(frame)
        return self._current_hash

    @property
    def current_frame(self) -> Frame:
        """The frame currently on screen; RuntimeError before the first."""
        if self._current_frame is None:
            raise RuntimeError("no frame has been displayed")
        return self._current_frame

    @property
    def current_hash(self) -> bytes:
        """Hash of the frame currently on screen."""
        if self._current_hash is None:
            raise RuntimeError("no frame has been displayed")
        return self._current_hash

    def apply_view_change(self, scroll_px: int | None = None,
                          zoom: float | None = None) -> bytes:
        """User gesture changed the view of the same page (zoom/scroll)."""
        frame = self.current_frame
        new_frame = Frame(
            page_content=frame.page_content,
            scroll_px=frame.scroll_px if scroll_px is None else scroll_px,
            zoom=frame.zoom if zoom is None else zoom,
        )
        return self.show(new_frame)
