"""The FLock host interface (Fig. 5: "Host Interface").

The SoC talks to FLock over a narrow command channel.  This module makes
that boundary *explicit and auditable*: every host request is a named
command with validated arguments, checked against a whitelist, logged, and
dispatched to the corresponding :class:`~repro.flock.module.FlockModule`
method.  Commands that would expose secrets simply do not exist in the
command table — the type-level guarantee the security analysis rests on.

The honest browser uses `FlockModule` methods directly (same semantics);
the host interface exists so tests and experiments can drive the boundary
the way malware would — by issuing raw commands — and verify that nothing
secret ever crosses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from .module import FlockError, FlockModule

__all__ = ["HostCommandError", "HostCommandRecord", "HostInterface"]


class HostCommandError(Exception):
    """Raised for unknown commands or invalid arguments."""


@dataclass(frozen=True)
class HostCommandRecord:
    """One logged host-interface transaction."""

    index: int
    command: str
    ok: bool
    error: str = ""


@dataclass
class HostInterface:
    """Command dispatcher at the FLock trusted boundary."""

    flock: FlockModule
    log: list[HostCommandRecord] = field(default_factory=list)

    #: Host-invocable commands and their handler names.  Anything absent —
    #: reading templates, private keys, session keys, raw captures — is
    #: not expressible over this interface.
    COMMANDS = {
        "get-public-key": "_cmd_get_public_key",
        "get-certificate": "_cmd_get_certificate",
        "get-service-view": "_cmd_get_service_view",
        "list-domains": "_cmd_list_domains",
        "sign-as-device": "_cmd_sign_as_device",
        "sign-for-service": "_cmd_sign_for_service",
        "session-mac": "_cmd_session_mac",
        "verify-session-mac": "_cmd_verify_session_mac",
        "open-session": "_cmd_open_session",
        "close-session": "_cmd_close_session",
        "current-frame-hash": "_cmd_current_frame_hash",
        "attest-challenge": "_cmd_attest_challenge",
    }

    def call(self, command: str, **kwargs) -> Any:
        """Issue one host command; logs the transaction either way."""
        handler_name = self.COMMANDS.get(command)
        index = len(self.log)
        if handler_name is None:
            self.log.append(HostCommandRecord(index, command, ok=False,
                                              error="unknown-command"))
            raise HostCommandError(f"unknown command {command!r}")
        handler: Callable = getattr(self, handler_name)
        try:
            result = handler(**kwargs)
        except TypeError as exc:
            self.log.append(HostCommandRecord(index, command, ok=False,
                                              error="bad-arguments"))
            raise HostCommandError(f"bad arguments for {command!r}: {exc}") \
                from exc
        except FlockError as exc:
            self.log.append(HostCommandRecord(index, command, ok=False,
                                              error=str(exc)))
            raise
        self.log.append(HostCommandRecord(index, command, ok=True))
        return result

    # ----------------------------------------------------------- handlers
    def _cmd_get_public_key(self) -> bytes:
        return self.flock.public_key.to_bytes()

    def _cmd_get_certificate(self) -> bytes:
        if self.flock.certificate is None:
            raise FlockError("no certificate installed")
        return self.flock.certificate.to_bytes()

    def _cmd_get_service_view(self, domain: str) -> dict:
        view = self.flock.service_view(domain)
        return {"domain": view.domain, "account": view.account,
                "public_key": view.public_key.to_bytes()}

    def _cmd_list_domains(self) -> list[str]:
        return self.flock.flash.domains()

    def _cmd_sign_as_device(self, message: bytes) -> bytes:
        return self.flock.sign_as_device(message)

    def _cmd_sign_for_service(self, domain: str, message: bytes) -> bytes:
        return self.flock.sign_for_service(domain, message)

    def _cmd_session_mac(self, domain: str, message: bytes) -> bytes:
        return self.flock.session_mac(domain, message)

    def _cmd_verify_session_mac(self, domain: str, message: bytes,
                                tag: bytes) -> bool:
        return self.flock.verify_session_mac(domain, message, tag)

    def _cmd_open_session(self, domain: str) -> bytes:
        return self.flock.open_session(domain)

    def _cmd_close_session(self, domain: str) -> None:
        self.flock.close_session(domain)

    def _cmd_current_frame_hash(self) -> bytes:
        return self.flock.current_frame_hash

    def _cmd_attest_challenge(self, domain: str) -> bytes:
        return self.flock.attest_challenge(domain)

    # ------------------------------------------------------------- audit
    def command_counts(self) -> dict[str, int]:
        """Histogram of commands issued over this interface."""
        return Counter(record.command for record in self.log)
