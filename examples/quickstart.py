#!/usr/bin/env python3
"""Quickstart: the whole TRUST stack in one script.

Builds a deployment from scratch (CA, web server, mobile device with a
FLock module and in-display fingerprint sensors), enrolls a user, registers
the device with the server (Fig. 9), logs in, and browses with continuous
per-touch authentication (Fig. 10) — printing what happens at each step.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import (
    MobileDevice,
    UntrustedChannel,
    WebServer,
    login,
    register_device,
    session_request,
)

LOGIN_BUTTON = (28.0, 80.0)  # over the bottom-centre fingerprint sensor


def main() -> None:
    rng = np.random.default_rng(2012)

    print("=== 1. The physical world ===")
    alice_finger = synthesize_master("alice-right-thumb", rng)
    print(f"synthesized Alice's finger: pattern={alice_finger.pattern_name}, "
          f"ridge period={alice_finger.wavelength:.1f}px")

    print("\n=== 2. The deployment (Fig. 8) ===")
    ca = CertificateAuthority(rng=HmacDrbg(b"quickstart-ca"))
    server = WebServer("www.bank.example", ca, b"quickstart-server")
    server.create_account("alice", "legacy-password-for-reset")
    device = MobileDevice("alice-phone", b"quickstart-device", ca=ca)
    print(f"CA online; server '{server.domain}' has a CA-signed certificate")
    print(f"device '{device.device_id}' carries a FLock module with "
          f"{len(device.layout.sensors)} in-display TFT fingerprint sensors "
          f"({device.layout.area_fraction():.0%} of the screen)")

    print("\n=== 3. Enrollment ===")
    template = enroll_master(alice_finger, rng)
    device.flock.enroll_local_user(template)
    print(f"enrolled template with {template.size} minutiae "
          f"(stored only inside FLock's protected flash)")

    print("\n=== 4. Device-to-account binding (Fig. 9) ===")
    channel = UntrustedChannel()
    outcome = register_device(device, server, channel, "alice",
                              LOGIN_BUTTON, alice_finger, rng)
    print(f"registration: {outcome.reason} "
          f"({outcome.messages} messages, "
          f"{outcome.bytes_to_server + outcome.bytes_to_device} bytes, "
          f"{outcome.crypto_time_s * 1000:.0f} ms modeled crypto)")
    assert outcome.success

    print("\n=== 5. Login + continuous authentication (Fig. 10) ===")
    outcome = login(device, server, channel, "alice", LOGIN_BUTTON,
                    alice_finger, rng)
    print(f"login: {outcome.reason}; session {outcome.session.session_id}")
    assert outcome.success
    for index in range(5):
        result = session_request(
            device, server, channel, outcome.session, risk=0.0, rng=rng,
            touch_xy=LOGIN_BUTTON, master=alice_finger,
            time_s=10.0 + index)
        print(f"  request {index + 1}: {result.reason} "
              f"(fresh nonce, frame hash attested, "
              f"{result.bytes_to_server} B up)")

    state = server.session(outcome.session.session_id)
    print(f"\nserver saw {state.request_count} authenticated requests; "
          f"frame-hash audit log holds {len(server.frame_audit_log)} entries")
    print("\nEvery request was authenticated by Alice's physical touches —")
    print("no password typed, no explicit login step beyond touching the UI.")


if __name__ == "__main__":
    main()
