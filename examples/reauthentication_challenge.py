#!/usr/bin/env python3
"""The re-authentication challenge: graduated response to elevated risk.

Between "everything is fine" and "terminate the session" sits the
challenge band: when a session's reported identity risk is elevated but
not damning, the server withholds content and demands a *fresh verified
touch*, attested by FLock.  The genuine user passes with one press; an
impostor cannot — FLock refuses to mint the attestation without a
verified capture, and the generic MAC oracle refuses attestation-prefixed
messages, so malware cannot forge one either.

Run:  python examples/reauthentication_challenge.py
"""

import numpy as np

from repro.eval import LOGIN_BUTTON_XY, standard_deployment
from repro.flock import FlockError
from repro.net import UntrustedChannel, answer_challenge, login, session_request


def main() -> None:
    world = standard_deployment(seed=2024)
    rng = np.random.default_rng(3)
    channel = UntrustedChannel()

    print("=== Login ===")
    outcome = login(world.device, world.server, channel, world.account,
                    LOGIN_BUTTON_XY, world.user_master, rng)
    print(f"login: {outcome.reason}")
    session = outcome.session

    print("\n=== Risk drifts up (a stretch of unverified touches) ===")
    result = session_request(world.device, world.server, channel, session,
                             risk=0.6, rng=rng)
    print(f"request at risk 0.60: {result.reason}")
    assert result.reason == "challenge-required"

    print("\n=== An impostor tries to answer the challenge ===")
    bad = answer_challenge(world.device, world.server, channel, session,
                           LOGIN_BUTTON_XY, world.impostor_master, rng)
    print(f"impostor's answer: {bad.reason}")

    print("\n=== Malware tries to forge the attestation directly ===")
    try:
        world.device.flock.session_mac(world.server.domain,
                                       b"flock-attest:forged")
        print("malware forged an attestation (BAD)")
    except FlockError as exc:
        print(f"FLock refused: {exc}")

    print("\n=== The genuine user touches once ===")
    good = answer_challenge(world.device, world.server, channel, session,
                            LOGIN_BUTTON_XY, world.user_master, rng)
    print(f"genuine answer: {good.reason}")

    result = session_request(world.device, world.server, channel, session,
                             risk=0.1, rng=rng)
    print(f"follow-up request: {result.reason}")
    state = world.server.session(session.session_id)
    print(f"\nserver stats: {state.challenges_issued} challenge issued, "
          f"{state.challenges_passed} passed")
    world.device.flock.close_session(world.server.domain)

    print("\nThe challenge is the remote analogue of the paper's CHALLENGE")
    print("response: cheaper than terminating, stronger than trusting.")


if __name__ == "__main__":
    main()
