#!/usr/bin/env python3
"""Remote identity management: a banking session under attack.

Three acts:

1. Alice banks normally — every page request carries her live identity
   risk and the hash of the frame she actually saw.
2. A network adversary replays her recorded requests — each one bounces
   off the server's one-time nonces.
3. Malware hijacks the session and floods requests with no touches behind
   them — the risk report climbs and the server kills the session.

Run:  python examples/remote_banking.py
"""

import numpy as np

from repro.attacks import fake_touch_attack, replay_trust_traffic
from repro.core import TrustCoordinator
from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import MobileDevice, UntrustedChannel, WebServer, register_device
from repro.touchgen import SessionConfig, SessionGenerator, example_users

LOGIN_BUTTON = (28.0, 80.0)


def main() -> None:
    rng = np.random.default_rng(99)
    alice = example_users()[0]
    alice_finger = synthesize_master(alice.finger_id, rng)

    ca = CertificateAuthority(rng=HmacDrbg(b"bank-ca"))
    bank = WebServer("www.bank.example", ca, b"bank-server")
    bank.create_account("alice", "reset-fallback-password")
    device = MobileDevice("alice-phone", b"bank-device", ca=ca)
    device.flock.enroll_local_user(enroll_master(alice_finger, rng))

    channel = UntrustedChannel()
    assert register_device(device, bank, channel, "alice", LOGIN_BUTTON,
                           alice_finger, rng).success
    print("device bound to account 'alice' at", bank.domain)

    # ---- Act 1: honest banking -------------------------------------------
    print("\n=== Act 1: Alice banks normally ===")
    trace = SessionGenerator(alice).generate(
        SessionConfig(n_interactions=30,
                      layout_mix=(("bank-app", 0.7), ("keyboard", 0.3))),
        seed=5)
    coordinator = TrustCoordinator(device, bank, channel, "alice",
                                   login_button_xy=LOGIN_BUTTON)
    report = coordinator.run_session(
        trace.gestures, {alice.finger_id: alice_finger}, rng,
        login_master=alice_finger)
    print(f"login: {report.login.reason}; "
          f"{report.requests_ok} requests served, "
          f"{report.requests_failed} failed, terminated={report.terminated}")
    risks = report.risk_series
    print(f"risk along the session: min={min(risks):.2f} "
          f"max={max(risks):.2f} (server cut-off is 0.75)")
    device.flock.close_session(bank.domain)

    # ---- Act 2: network replay -------------------------------------------
    print("\n=== Act 2: an on-path adversary replays recorded requests ===")
    result = replay_trust_traffic(bank, channel, "page-request")
    print(" ", result)

    # ---- Act 3: malware floods fake requests ------------------------------
    print("\n=== Act 3: malware issues requests with no touches ===")
    result = fake_touch_attack(device, bank, "alice", LOGIN_BUTTON,
                               alice_finger, rng)
    print(" ", result)

    print("\nThe server never needed a CAPTCHA, cookie expiry or re-login "
          "prompt:\ncontinuous fingerprint evidence (or its absence) did "
          "all the work.")


if __name__ == "__main__":
    main()
