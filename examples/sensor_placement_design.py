#!/usr/bin/env python3
"""Design-space exploration: where to put the fingerprint sensors.

The hardware designer's workflow from section IV-A: collect touch traces
(Fig. 7), build density maps, run the placement optimizer, and compare the
resulting capture rates against density-blind baselines — then check the
critical-button rule against the app layouts.

Run:  python examples/sensor_placement_design.py
"""

import numpy as np

from repro.core import CriticalButtonRule
from repro.eval import render_density, render_table
from repro.hardware import (
    FLOCK_SENSOR_WIDE,
    greedy_placement,
    grid_placement,
    random_placement,
)
from repro.touchgen import (
    SessionConfig,
    SessionGenerator,
    density_map,
    example_users,
    standard_layouts,
)

PANEL_W, PANEL_H = 56.0, 94.0


def main() -> None:
    print("=== Step 1: collect touch traces from the user study ===")
    traces = {}
    for user in example_users():
        generator = SessionGenerator(user)
        traces[user.user_id] = generator.generate(
            SessionConfig(n_interactions=500), seed=17)
        print(f"  {user.user_id}: {traces[user.user_id].n_touches} touches "
              f"({user.handedness}-handed)")

    print("\n=== Step 2: density maps (the Fig. 7 view) ===")
    all_points = np.vstack([t.primary_points() for t in traces.values()])
    aggregate = density_map(all_points, PANEL_W, PANEL_H,
                            grid_rows=24, grid_cols=14)
    print(render_density(aggregate, title="aggregate touch density "
                                          "(dark = hot)"))

    print("\n=== Step 3: optimize sensor placement ===")
    density = density_map(all_points, PANEL_W, PANEL_H)
    layouts = {
        "greedy (paper)": greedy_placement(density, PANEL_W, PANEL_H,
                                           FLOCK_SENSOR_WIDE, 4),
        "uniform grid": grid_placement(PANEL_W, PANEL_H,
                                       FLOCK_SENSOR_WIDE, 4),
        "random": random_placement(PANEL_W, PANEL_H, FLOCK_SENSOR_WIDE, 4,
                                   np.random.default_rng(3)),
    }
    rows = []
    for name, layout in layouts.items():
        per_user = [layout.capture_rate(traces[u.user_id].primary_points(),
                                        margin_mm=2.0)
                    for u in example_users()]
        rows.append([name, f"{layout.area_fraction():.0%}"]
                    + [f"{rate:.0%}" for rate in per_user]
                    + [f"{np.mean(per_user):.0%}"])
    print(render_table(
        ["placement", "screen area", "user1", "user2", "user3", "mean"],
        rows, title="capture rate by placement strategy (4 sensors)"))

    print("\n=== Step 4: lint the app layouts (critical-button rule) ===")
    best = layouts["greedy (paper)"]
    rule = CriticalButtonRule(best)
    for name, ui_layout in standard_layouts().items():
        uncovered = rule.uncovered_critical_elements(ui_layout)
        status = "OK" if not uncovered else f"UNCOVERED: {uncovered}"
        print(f"  {name:10s} {status}")
    print("\n(Any UNCOVERED critical button must be moved over a sensor "
          "before the\nscreen ships — the paper's countermeasure 1.)")


if __name__ == "__main__":
    main()
