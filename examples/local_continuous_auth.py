#!/usr/bin/env python3
"""Local identity management: unlock, continuous protection, theft response.

The scenario the paper's section IV-A describes: Alice unlocks her phone
with a touch, uses it naturally (every touch opportunistically verified),
then the phone is snatched mid-session.  Watch the identity-risk window
climb and the device lock itself.

Run:  python examples/local_continuous_auth.py
"""

import numpy as np

from repro.core import DeviceState, LocalIdentityManager
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import MobileDevice
from repro.touchgen import SessionConfig, SessionGenerator, example_users

UNLOCK_BUTTON = (28.0, 80.0)


def main() -> None:
    rng = np.random.default_rng(7)

    alice = example_users()[0]
    alice_finger = synthesize_master(alice.finger_id, rng)
    thief_finger = synthesize_master("thief-thumb", np.random.default_rng(666))

    device = MobileDevice("alice-phone", b"local-example")
    device.flock.enroll_local_user(enroll_master(alice_finger, rng))
    manager = LocalIdentityManager(flock=device.flock, panel=device.panel,
                                   unlock_button_xy=UNLOCK_BUTTON)

    print("=== Unlock (the button sits over a fingerprint sensor) ===")
    attempt = 0
    while not manager.try_unlock(alice_finger, rng, time_s=attempt * 0.5):
        attempt += 1
        print(f"  capture attempt {attempt} did not verify, touch again...")
    print(f"  unlocked after {attempt + 1} touch(es); state={manager.state.value}")

    print("\n=== Alice uses the phone (60 natural gestures) ===")
    trace = SessionGenerator(alice).generate(
        SessionConfig(n_interactions=140), seed=42)
    for gesture in trace.gestures[:60]:
        manager.process_gesture(gesture, alice_finger, rng)
    counts = manager.pipeline.outcome_counts()
    print(f"  outcomes: {counts}")
    print(f"  identity risk now {manager.current_risk:.2f}; "
          f"locks so far: {manager.locks}")
    assert manager.state is not DeviceState.LOCKED

    print("\n=== Phone snatched! The thief keeps using it ===")
    takeover_index = len(manager.pipeline.events)
    for count, gesture in enumerate(trace.gestures[60:], start=1):
        result = manager.process_gesture(gesture, thief_finger, rng)
        if count <= 5 or result.action.value != "none":
            risk = (result.event.assessment.risk if result.event
                    else manager.current_risk)
            print(f"  thief touch {count}: outcome="
                  f"{result.event.outcome_kind.value if result.event else 'ignored'}"
                  f", risk={risk:.2f}, action={result.action.value}")
        if result.state is DeviceState.LOCKED:
            print(f"\nDEVICE LOCKED after {count} thief touches "
                  f"(detection latency "
                  f"{manager.detection_latency(takeover_index)} counted touches)")
            break
    else:
        raise SystemExit("thief was never locked out — should not happen")

    print("\nThe thief never typed a wrong password, never failed an "
          "explicit login —\nthe device simply noticed its user's "
          "fingerprints stopped appearing.")


if __name__ == "__main__":
    main()
