"""OB501 — observability discipline rule fixtures."""

from .conftest import rule_ids


class TestPrintInLibraryCode:
    def test_print_in_library_module_is_flagged(self, lint):
        findings = lint('print("capture done")\n', module="repro.net.badmod")
        assert rule_ids(findings) == ["OB501"]
        assert "repro.obs" in findings[0].message

    def test_cli_module_is_exempt(self, lint):
        findings = lint('print("usage: ...")\n', module="repro.cli")
        assert findings == []

    def test_main_module_is_exempt(self, lint):
        findings = lint('print("hello")\n', module="repro.__main__")
        assert findings == []

    def test_reporters_module_is_exempt(self, lint):
        findings = lint('print(report)\n', module="repro.analysis.reporters")
        assert findings == []

    def test_obs_package_is_exempt(self, lint):
        findings = lint('print(debug_state)\n', module="repro.obs.export")
        assert findings == []

    def test_method_named_print_is_clean(self, lint):
        # Only the builtin counts; attribute calls are someone else's API.
        findings = lint("device.print(page)\n", module="repro.net.badmod")
        assert findings == []


class TestAdHocCounterDicts:
    def test_get_accumulate_is_flagged(self, lint):
        findings = lint(
            "calls = {}\n"
            "def record(op):\n"
            "    calls[op] = calls.get(op, 0) + 1\n",
            module="repro.runtime.badmod")
        assert rule_ids(findings) == ["OB501"]
        assert "'calls'" in findings[0].message

    def test_augassign_on_dict_is_flagged(self, lint):
        findings = lint(
            "hits = dict()\n"
            "def record(kind):\n"
            "    hits[kind] += 1\n",
            module="repro.runtime.badmod")
        assert rule_ids(findings) == ["OB501"]

    def test_dataclass_field_dict_is_flagged_through_self(self, lint):
        findings = lint(
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Engine:\n"
            "    ops: dict = field(default_factory=dict)\n"
            "    def account(self, op):\n"
            "        self.ops[op] = self.ops.get(op, 0) + 1\n",
            module="repro.flock.badmod")
        assert rule_ids(findings) == ["OB501"]
        assert "'self.ops'" in findings[0].message

    def test_collections_counter_is_not_flagged(self, lint):
        findings = lint(
            "from collections import Counter\n"
            "calls = Counter()\n"
            "def record(op):\n"
            "    calls[op] += 1\n",
            module="repro.runtime.goodmod")
        assert findings == []

    def test_non_counter_dict_writes_are_clean(self, lint):
        # Plain assignment into a dict is a cache, not a counter.
        findings = lint(
            "cache = {}\n"
            "def put(k, v):\n"
            "    cache[k] = v\n",
            module="repro.runtime.goodmod")
        assert findings == []

    def test_numeric_augassign_on_unknown_name_is_clean(self, lint):
        # A dict we never saw initialized as a plain dict is not assumed
        # to be one (it may be a Counter passed in).
        findings = lint(
            "def record(tallies, op):\n"
            "    tallies[op] += 1\n",
            module="repro.runtime.goodmod")
        assert findings == []

    def test_inline_suppression(self, lint):
        findings = lint(
            "calls = {}\n"
            "def record(op):\n"
            "    calls[op] = calls.get(op, 0) + 1  "
            "# trust-lint: disable=OB501\n",
            module="repro.runtime.badmod")
        assert findings == []
