"""The ``repro-lint verify`` subcommand and severity-aware exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.cli import main

#: A broken-variant invocation that finds PV402+PV403 within depth 4.
_MUTATED = ["verify", "--no-config", "--depth", "4", "--entry", "login",
            "--mutate", "skip-login-signature-check"]
#: A clean invocation kept cheap for the test suite.
_CLEAN = ["verify", "--no-config", "--depth", "4"]


class TestVerifySubcommand:
    def test_list_entries(self, capsys):
        assert main(["verify", "--list-entries"]) == 0
        out = capsys.readouterr().out
        for scenario in ("register", "login", "session", "challenge",
                         "reset", "transfer"):
            assert scenario in out
        assert "--mutate skip-replay-check" in out

    def test_clean_run_exits_zero_with_stats(self, capsys):
        assert main(_CLEAN) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "explored state(s)" in out
        assert "verify: depth budget 4, adversary on" in out
        assert "states/s" in out
        assert "BUDGET EXCEEDED" not in out

    def test_mutated_run_exits_one_with_counterexample(self, capsys):
        assert main(_MUTATED) == 1
        out = capsys.readouterr().out
        assert "PV403" in out
        assert "mutations: skip-login-signature-check" in out
        assert "trace:" in out
        assert "src/repro/net/webserver.py" in out

    def test_json_format_carries_severity_and_stats(self, capsys):
        assert main(_MUTATED + ["--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verify"]["depth"] == 4
        assert payload["verify"]["exhausted"] is True
        assert payload["verify"]["scenarios"][0]["name"] == "login"
        rules = {f["rule"] for f in payload["findings"]}
        assert "PV403" in rules
        assert all(f["severity"] == "error" for f in payload["findings"])
        assert all(f["trace"] for f in payload["findings"])

    def test_sarif_format_embeds_verify_properties(self, capsys):
        assert main(_MUTATED + ["--format", "sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        run = sarif["runs"][0]
        assert run["properties"]["verify"]["states"] > 0
        results = [r for r in run["results"] if r["ruleId"] == "PV403"]
        assert results and results[0]["level"] == "error"
        assert results[0]["codeFlows"]

    def test_unknown_entry_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["verify", "--no-config", "--entry", "bogus"])
        assert exc_info.value.code == 2

    def test_bad_config_entry_exits_two(self, tmp_path, capsys,
                                        monkeypatch):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.trust-lint.verify]
            entries = ["bogus"]
        """))
        monkeypatch.chdir(tmp_path)
        assert main(["verify", "--depth", "2"]) == 2
        assert "unknown verify entry" in capsys.readouterr().err

    def test_config_table_sets_depth(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.trust-lint.verify]
            depth = 3
            entries = ["register"]
        """))
        monkeypatch.chdir(tmp_path)
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "verify: depth budget 3" in out
        assert "register" in out
        assert "login" not in out  # entries narrowed by config

    def test_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "verify-baseline.json"
        assert main(_MUTATED + ["--baseline", str(baseline),
                                "--update-baseline"]) == 0
        assert baseline.is_file()
        assert main(_MUTATED + ["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out


class TestFailOnThreshold:
    def test_pv400_note_respects_fail_on(self, capsys):
        truncated = ["verify", "--no-config", "--depth", "6",
                     "--entry", "login", "--max-states", "40"]
        # A budget note is a finding by default...
        assert main(truncated) == 1
        out = capsys.readouterr().out
        assert "PV400" in out
        assert "[note]" in out
        assert "BUDGET EXCEEDED" in out
        # ...but --fail-on error treats coverage caveats as non-fatal.
        assert main(truncated + ["--fail-on", "error"]) == 0

    def test_scan_fail_on_error_still_fails_on_errors(self, tmp_path,
                                                      capsys):
        pkg = tmp_path / "repro" / "crypto"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").touch()
        (pkg / "__init__.py").touch()
        (pkg / "badmod.py").write_text("import random\n")
        assert main([str(tmp_path), "--no-config"]) == 1
        assert main([str(tmp_path), "--no-config",
                     "--fail-on", "error"]) == 1
        capsys.readouterr()
