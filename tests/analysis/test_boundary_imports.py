"""TB001 — trust-boundary import rule fixtures."""

from .conftest import rule_ids


class TestBoundaryViolations:
    def test_crypto_importing_net_is_flagged(self, lint):
        findings = lint("from repro.net import webserver\n",
                        module="repro.crypto.badmod")
        assert rule_ids(findings) == ["TB001"]
        assert "repro.net" in findings[0].message

    def test_flock_importing_core_is_flagged(self, lint):
        findings = lint("import repro.core.policy\n",
                        module="repro.flock.badmod")
        assert rule_ids(findings) == ["TB001"]

    def test_flock_importing_attacks_is_flagged(self, lint):
        findings = lint("from repro.attacks.replay import replay_attack\n",
                        module="repro.flock.badmod")
        assert rule_ids(findings) == ["TB001"]

    def test_crypto_importing_baselines_is_flagged(self, lint):
        findings = lint("from repro import baselines\n",
                        module="repro.crypto.badmod")
        assert rule_ids(findings) == ["TB001"]

    def test_relative_escape_is_flagged(self, lint):
        # ``from ..net import channel`` inside repro.flock reaches upward.
        findings = lint("from ..net import channel\n",
                        module="repro.flock.badmod")
        assert rule_ids(findings) == ["TB001"]

    def test_net_importing_core_is_flagged(self, lint):
        # net sits below core in the DAG; the reverse edge is the only
        # allowed direction.
        findings = lint("from repro.core import pipeline\n",
                        module="repro.net.badmod")
        assert rule_ids(findings) == ["TB001"]


class TestBoundaryAllowed:
    def test_flock_importing_crypto_is_clean(self, lint):
        findings = lint(
            "from repro.crypto import HmacDrbg\n"
            "from repro.fingerprint import FingerprintTemplate\n"
            "from repro.hardware import SensorLayout\n",
            module="repro.flock.goodmod")
        assert findings == []

    def test_intra_package_imports_are_clean(self, lint):
        findings = lint("from .rng import HmacDrbg\n",
                        module="repro.crypto.goodmod")
        assert findings == []

    def test_package_init_relative_import_is_clean(self, lint):
        # ``from .sha256 import sha256`` inside repro/crypto/__init__.py
        # refers to repro.crypto.sha256, not repro.sha256.
        findings = lint("from .sha256 import sha256\n",
                        module="repro.crypto", is_package=True)
        assert findings == []

    def test_unconstrained_package_is_clean(self, lint):
        findings = lint("from repro.net import WebServer\n",
                        module="scripts.tooling")
        assert findings == []

    def test_stdlib_and_third_party_are_clean(self, lint):
        findings = lint("import json\nimport numpy as np\n",
                        module="repro.crypto.goodmod")
        assert findings == []


class TestBoundarySuppression:
    def test_inline_suppression(self, lint):
        findings = lint(
            "from repro.net import webserver  # trust-lint: disable=TB001\n",
            module="repro.crypto.badmod")
        assert findings == []

    def test_file_suppression(self, lint):
        findings = lint(
            "# trust-lint: disable-file=TB001\n"
            "from repro.net import webserver\n",
            module="repro.crypto.badmod")
        assert findings == []
