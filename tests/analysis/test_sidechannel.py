"""SC800–SC805 — side-channel flow rules and the dynamic trace witness.

Every rule gets a seeded mutation fixture (the minimal secret-dependent
construct it must catch) plus a clean counterpart; the declassification
model (``is None``, membership, ``constant_time_equal``, public
patterns) is pinned explicitly; the suppression audit proves the only
SC suppressions in the tree live inside the documented modpow boundary
and carry reasons; and the witness tests run the branch/opcode-trace
harness over the three constant-time primitives.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import analyze_sources
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleContext
from repro.analysis.sidechannel.witness import (compare_traces, record_trace,
                                                run_witness)

from .conftest import rule_ids

REPO_ROOT = Path(__file__).resolve().parents[2]


def sc_lint(sources, config=None):
    """Run the full rule set *plus* the sc pass over fixture modules."""
    if isinstance(sources, str):
        sources = {"repro.crypto.fixture": sources}
    sources = {m: textwrap.dedent(s) for m, s in sources.items()}
    return analyze_sources(sources, config=config, sc=True)


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestSC800Branch:
    def test_branch_on_secret_is_flagged(self):
        hits = by_rule(sc_lint("""
            def route(session_key):
                if session_key:
                    return 1
                return 0
        """), "SC800")
        assert len(hits) == 1
        assert "session_key" in hits[0].message
        assert hits[0].trace  # every sc finding carries a trace

    def test_branch_on_public_value_is_clean(self):
        findings = sc_lint("""
            def route(domain):
                if domain:
                    return 1
                return 0
        """)
        assert by_rule(findings, "SC800") == []

    def test_is_none_presence_check_is_declassified(self):
        findings = sc_lint("""
            def enrolled(device_template):
                if device_template is not None:
                    return True
                return False
        """)
        assert by_rule(findings, "SC800") == []

    def test_const_guarded_compare_result_steers_branch(self):
        # ``x == 5`` against a constant is not an SC805 (the guard is
        # fine) but its *result* still carries the dependence: branching
        # on it reports where the fork happens.
        hits = by_rule(sc_lint("""
            def pick(private_flag):
                ok = private_flag == 5
                if ok:
                    return 1
                return 0
        """), "SC800")
        assert len(hits) == 1


class TestSC801Loops:
    def test_while_on_secret_is_flagged(self):
        hits = by_rule(sc_lint("""
            def countdown(private_exponent):
                while private_exponent:
                    private_exponent = private_exponent >> 1
        """), "SC801")
        assert len(hits) == 1
        assert "private_exponent" in hits[0].message

    def test_secret_range_bound_is_flagged(self):
        hits = by_rule(sc_lint("""
            def spin(private_count):
                total = 0
                for _ in range(private_count):
                    total += 1
                return total
        """), "SC801")
        assert len(hits) == 1

    def test_early_exit_inside_loop_is_flagged(self):
        hits = by_rule(sc_lint("""
            def find(secret_code, items):
                for item in items:
                    if item > secret_code:
                        return item
                return None
        """), "SC801")
        assert len(hits) == 1

    def test_fixed_trip_arithmetic_select_is_clean(self):
        findings = sc_lint("""
            def fold(private_d):
                acc = 0
                for i in range(16):
                    acc |= (private_d >> i) & 1
                return acc
        """)
        assert by_rule(findings, "SC801") == []
        assert by_rule(findings, "SC800") == []


class TestSC802Subscript:
    def test_secret_indexed_lookup_is_flagged(self):
        hits = by_rule(sc_lint("""
            def sbox(private_index, table):
                return table[private_index]
        """), "SC802")
        assert len(hits) == 1

    def test_secret_membership_probe_is_flagged(self):
        hits = by_rule(sc_lint("""
            def known(private_index, table):
                return private_index in table
        """), "SC802")
        assert len(hits) == 1

    def test_public_needle_in_secret_container_is_clean(self):
        # Membership walks the container's keys/hashes: a public needle
        # probed against a secret-holding store leaks nothing.
        findings = sc_lint("""
            def lookup(domain, key_store):
                return domain in key_store
        """)
        assert by_rule(findings, "SC802") == []

    def test_constant_subscript_is_clean(self):
        findings = sc_lint("""
            def first(session_key):
                return session_key[0]
        """)
        assert by_rule(findings, "SC802") == []


class TestSC803Bigint:
    def test_secret_modulo_is_flagged(self):
        hits = by_rule(sc_lint("""
            def reduce(private_d, modulus):
                return private_d % modulus
        """), "SC803")
        assert len(hits) == 1

    def test_secret_pow_call_is_flagged(self):
        hits = by_rule(sc_lint("""
            def raise_to(base, private_d, modulus):
                return pow(base, private_d, modulus)
        """), "SC803")
        assert len(hits) == 1

    def test_constant_cost_arithmetic_is_clean(self):
        findings = sc_lint("""
            def mix(private_d):
                return (private_d + 1) * 3 ^ 0x5A
        """)
        assert by_rule(findings, "SC803") == []


class TestSC804Length:
    def test_length_sized_allocation_is_flagged(self):
        hits = by_rule(sc_lint("""
            def pad(session_key):
                return bytes(len(session_key))
        """), "SC804")
        assert len(hits) == 1
        assert "len(session_key)" in hits[0].message

    def test_length_bounded_loop_is_flagged(self):
        hits = by_rule(sc_lint("""
            def wipe(session_key):
                out = []
                for _ in range(len(session_key)):
                    out.append(0)
                return out
        """), "SC804")
        assert len(hits) == 1

    def test_length_guard_idiom_is_approved(self):
        # ``if len(a) != len(b)`` is the approved constant-time-equal
        # prelude: length may guard, it must not size.
        findings = sc_lint("""
            def gate(session_key, candidate_key):
                if len(session_key) != len(candidate_key):
                    return False
                return constant_time_equal(session_key, candidate_key)
        """)
        assert by_rule(findings, "SC804") == []
        assert by_rule(findings, "SC800") == []


class TestSC805Compare:
    def test_mac_output_equality_is_flagged(self):
        hits = by_rule(sc_lint({"repro.net.fixture": """
            def check(message, provided):
                expected_value = hmac_sha256(b"k", message)
                return expected_value == provided
        """}), "SC805")
        assert len(hits) == 1
        assert "constant_time_equal" in hits[0].message

    def test_constant_time_helper_is_clean(self):
        findings = sc_lint({"repro.net.fixture": """
            def check(message, provided):
                expected_value = hmac_sha256(b"k", message)
                return constant_time_equal(expected_value, provided)
        """})
        assert by_rule(findings, "SC805") == []

    def test_direct_secret_bytes_compare_stays_cd202(self):
        # Direct ``session_key == candidate`` is the local name-based
        # rule's territory; SC805 covers what CD202 cannot see.
        findings = sc_lint({"repro.net.fixture": """
            def check(session_key, candidate):
                return session_key == candidate
        """})
        assert by_rule(findings, "SC805") == []
        assert "CD202" in rule_ids(findings)


class TestInterprocedural:
    HELPER = """
        def pick(value, table):
            if value:
                return table[0]
            return table[1]
    """

    def test_secret_steering_a_callee_branch_is_traced(self):
        findings = sc_lint({"repro.crypto.helper": self.HELPER,
                            "repro.net.caller": """
            from repro.crypto import helper

            def run(session_key, table):
                return helper.pick(session_key, table)
        """})
        hits = by_rule(findings, "SC800")
        assert len(hits) == 1
        # Anchored at the fix site: the branch inside the helper.
        assert hits[0].module == "repro.crypto.helper"
        assert "session_key" in hits[0].message
        paths = {hop.path for hop in hits[0].trace}
        assert "repro.net.caller.py" in paths
        assert "repro.crypto.helper.py" in paths

    def test_public_argument_through_same_helper_is_clean(self):
        findings = sc_lint({"repro.crypto.helper": self.HELPER,
                            "repro.net.caller": """
            from repro.crypto import helper

            def run(domain, table):
                return helper.pick(domain, table)
        """})
        assert by_rule(findings, "SC800") == []

    def test_modules_outside_sc_scope_are_not_reported(self):
        findings = sc_lint({"repro.runtime.helper": """
            def route(session_key):
                if session_key:
                    return 1
                return 0
        """})
        assert [f for f in findings if f.rule.startswith("SC")] == []


class TestDeclassification:
    def test_constant_time_equal_result_may_branch(self):
        # The whole point of the discipline: route the compare through
        # the helper, then branch freely on its boolean.
        findings = sc_lint("""
            def gate(session_key, candidate):
                ok = constant_time_equal(session_key, candidate)
                if ok:
                    return 1
                return 0
        """)
        assert [f for f in findings if f.rule.startswith("SC")] == []

    def test_extended_public_patterns_declassify(self):
        fixture = """
            def poll(has_private_key):
                if has_private_key:
                    return 1
                return 0
        """
        base = AnalysisConfig.default()
        assert by_rule(sc_lint(fixture, config=base), "SC800")
        widened = replace(
            base, sc_public_patterns=base.sc_public_patterns + ("has_*",))
        assert by_rule(sc_lint(fixture, config=widened), "SC800") == []

    def test_declassifier_bodies_are_not_walked(self):
        # A function *named* like the audited comparator is the
        # discipline's implementation, not a subject of it.
        findings = sc_lint("""
            def constant_time_equal(a_key, b_key):
                result = 0
                for x, y in zip(a_key, b_key):
                    if x != y:
                        result = 1
                return result == 0
        """)
        assert [f for f in findings if f.rule.startswith("SC")] == []


class TestSuppressionAudit:
    """The acceptance bar: SC suppressions exist only inside the
    documented modpow boundary, and every one carries a reason."""

    @staticmethod
    def _boundary_spans(config):
        # Qualnames may carry a class segment (``...rsa.RsaPrivateKey.
        # _private_op``): the module is the longest prefix that exists
        # as a file, the last segment is the function to span.
        spans = {}
        for qualname in config.sc_modpow_boundary:
            parts = qualname.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                path = (REPO_ROOT / "src"
                        / Path(*parts[:cut]).with_suffix(".py"))
                if path.is_file():
                    spans.setdefault(".".join(parts[:cut]), {})[
                        parts[-1]] = None
                    break
            else:
                raise AssertionError(f"unresolvable boundary: {qualname}")
        for module, wanted in spans.items():
            path = REPO_ROOT / "src" / Path(*module.split(".")).with_suffix(
                ".py")
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name in wanted):
                    wanted[node.name] = (node.lineno, node.end_lineno)
        return spans

    def test_sc_suppressions_only_in_boundary_and_reason_coded(self):
        config = AnalysisConfig.default()
        spans = self._boundary_spans(config)
        audited = 0
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
            text = path.read_text()
            if "disable=SC" not in text:
                continue
            rel = path.relative_to(REPO_ROOT / "src")
            module = ".".join(rel.with_suffix("").parts)
            ctx = ModuleContext.build(path, str(rel), module, text)
            for line, rules in ctx.line_suppressions.items():
                sc_rules = {r for r in (rules or ()) if r.startswith("SC")}
                if not sc_rules:
                    continue
                audited += 1
                assert module in spans, (
                    f"SC suppression outside the boundary: {rel}:{line}")
                assert any(lo <= line <= hi
                           for span in spans[module].values()
                           if span for lo, hi in [span]), (
                    f"SC suppression outside the boundary: {rel}:{line}")
                assert ctx.suppression_reasons.get(line), (
                    f"SC suppression without a reason: {rel}:{line}")
        assert audited > 0  # the boundary is real: rsa.py carries them

    def test_accelerated_backend_interior_is_in_the_boundary(self):
        """The registry's hot path (CRT cache, Montgomery ladder) is part
        of the audited modpow boundary and actually carries reason-coded
        suppressions — the accelerated backend gets no free pass."""
        config = AnalysisConfig.default()
        for qualname in ("repro.crypto.backend._crt_params",
                         "repro.crypto.backend._crt_private_op",
                         "repro.crypto.backend._ladder_pow",
                         "repro.crypto.backend.AcceleratedBackend.rsa_decrypt"):
            assert qualname in config.sc_modpow_boundary, qualname
        spans = self._boundary_spans(config)
        assert "repro.crypto.backend" in spans
        path = REPO_ROOT / "src" / "repro" / "crypto" / "backend.py"
        text = path.read_text()
        rel = path.relative_to(REPO_ROOT / "src")
        ctx = ModuleContext.build(path, str(rel), "repro.crypto.backend",
                                  text)
        sc_lines = [line for line, rules in ctx.line_suppressions.items()
                    if any(r.startswith("SC") for r in (rules or ()))]
        assert sc_lines, "backend.py carries no SC suppressions to audit"
        for line in sc_lines:
            assert any(lo <= line <= hi
                       for span in spans["repro.crypto.backend"].values()
                       if span for lo, hi in [span]), (
                f"backend.py:{line} suppression outside the boundary")
            assert ctx.suppression_reasons.get(line), (
                f"backend.py:{line} suppression without a reason")


@pytest.fixture(scope="module")
def witness_results():
    return {r.name: r for r in run_witness()}


class TestWitness:
    def test_mac_compare_traces_identically(self, witness_results):
        result = witness_results["mac-compare"]
        assert result.equal
        assert result.events_a > 0  # the tracer really saw crypto frames

    def test_chacha20_keystream_traces_identically(self, witness_results):
        result = witness_results["chacha20-keystream"]
        assert result.equal
        assert result.events_a > 0

    def test_rsa_private_op_traces_identically(self, witness_results):
        result = witness_results["rsa-private-op"]
        assert result.equal
        assert result.events_a > 0

    def test_rsa_unpad_traces_identically(self, witness_results):
        result = witness_results["rsa-decrypt-unpad"]
        assert result.equal
        assert result.events_a > 0

    def test_harness_detects_an_early_exit_compare(self):
        # Negative control: a naive compare MUST diverge, or the
        # witness proves nothing.
        def naive_equal(a, b):
            for x, y in zip(a, b):
                if x != y:
                    return False
            return True

        tag = bytes(range(32))
        broken = bytes([tag[0] ^ 0xFF]) + tag[1:]
        result = compare_traces(
            "naive", lambda: naive_equal(tag, tag),
            lambda: naive_equal(tag, broken),
            in_scope=lambda code: code.co_name == "naive_equal")
        assert not result.equal
        assert result.divergence_index >= 0
        assert result.events_b < result.events_a

    def test_record_trace_scope_filter(self):
        def noop():
            return 1

        assert record_trace(noop) == []  # not a crypto frame
