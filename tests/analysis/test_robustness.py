"""RB301/RB302 — robustness rule fixtures."""

from .conftest import rule_ids


class TestSwallowedException:
    def test_bare_except_is_always_flagged(self, lint):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        raise\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["RB301"]

    def test_broad_except_swallowing_is_flagged(self, lint):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["RB301"]

    def test_broad_except_returning_default_is_flagged(self, lint):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        return work()\n"
            "    except Exception as exc:\n"
            "        return None\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["RB301"]

    def test_broad_except_reraising_is_clean(self, lint):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        return work()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError('audited') from exc\n",
            module="repro.net.goodmod")
        assert findings == []

    def test_broad_except_logging_is_clean(self, lint):
        findings = lint(
            "def f(logger):\n"
            "    try:\n"
            "        return work()\n"
            "    except Exception as exc:\n"
            "        logger.warning(str(exc))\n"
            "        return None\n",
            module="repro.net.goodmod")
        assert findings == []

    def test_narrow_except_is_clean(self, lint):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        return work()\n"
            "    except ValueError:\n"
            "        return None\n",
            module="repro.net.goodmod")
        assert findings == []

    def test_broad_tuple_is_flagged(self, lint):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        return work()\n"
            "    except (ValueError, Exception):\n"
            "        return None\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["RB301"]


class TestMutableDefaults:
    def test_list_default_is_flagged(self, lint):
        findings = lint("def f(items=[]):\n    return items\n",
                        module="repro.net.badmod")
        assert rule_ids(findings) == ["RB302"]

    def test_dict_default_is_flagged(self, lint):
        findings = lint("def f(*, cache={}):\n    return cache\n",
                        module="repro.net.badmod")
        assert rule_ids(findings) == ["RB302"]

    def test_set_constructor_default_is_flagged(self, lint):
        findings = lint("def f(seen=set()):\n    return seen\n",
                        module="repro.net.badmod")
        assert rule_ids(findings) == ["RB302"]

    def test_none_default_is_clean(self, lint):
        findings = lint(
            "def f(items=None):\n"
            "    return [] if items is None else items\n",
            module="repro.net.goodmod")
        assert findings == []

    def test_dataclass_default_factory_is_clean(self, lint):
        findings = lint(
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Report:\n"
            "    findings: list = field(default_factory=list)\n",
            module="repro.net.goodmod")
        assert findings == []

    def test_inline_suppression(self, lint):
        findings = lint(
            "def f(items=[]):  # trust-lint: disable=RB302\n"
            "    return items\n",
            module="repro.net.badmod")
        assert findings == []
