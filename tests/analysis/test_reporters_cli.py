"""Reporters and the repro-lint command line."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import (analyze_paths, render_json, render_sarif,
                            render_text)
from repro.analysis.cli import main


def _plant(tmp_path, source: str = "import random\n",
           package: str = "crypto", name: str = "badmod"):
    pkg = tmp_path / "repro" / package
    pkg.mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "__init__.py").touch()
    (pkg / "__init__.py").touch()
    (pkg / f"{name}.py").write_text(textwrap.dedent(source))
    return tmp_path


_TAINT_LEAK = """\
def show(session_key):
    alias = session_key
    print(alias)  # trust-lint: disable=OB501
"""


class TestReporters:
    def test_text_report_lists_location_and_rule(self, tmp_path):
        _plant(tmp_path)
        report = analyze_paths([tmp_path])
        text = render_text(report)
        assert "CD201" in text
        assert "badmod.py:1:" in text
        assert "1 finding(s)" in text

    def test_json_report_is_parseable_and_stable(self, tmp_path):
        _plant(tmp_path)
        report = analyze_paths([tmp_path])
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "CD201"
        assert payload["findings"][0]["module"] == "repro.crypto.badmod"
        assert payload["findings"][0]["fingerprint"]

    def test_clean_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = analyze_paths([tmp_path])
        assert "0 finding(s)" in render_text(report)
        assert json.loads(render_json(report))["clean"] is True

    def test_text_and_json_include_taint_traces(self, tmp_path):
        _plant(tmp_path, _TAINT_LEAK, package="net", name="leaky")
        report = analyze_paths([tmp_path], taint=True)
        text = render_text(report)
        assert "SF110" in text
        assert "trace:" in text
        assert "leaky.py:2" in text  # the aliasing hop, with file:line
        payload = json.loads(render_json(report))
        assert payload["taint_ran"] is True
        (finding,) = [f for f in payload["findings"]
                      if f["rule"] == "SF110"]
        assert finding["trace"]
        assert all(h["path"] and h["line"] >= 1 and h["note"]
                   for h in finding["trace"])

    def test_sarif_report_shape(self, tmp_path):
        _plant(tmp_path, _TAINT_LEAK, package="net", name="leaky")
        report = analyze_paths([tmp_path], taint=True)
        sarif = json.loads(render_sarif(report))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SF101", "SF110", "SF111", "SC805"} <= rule_ids
        (result,) = [r for r in run["results"] if r["ruleId"] == "SF110"]
        assert result["partialFingerprints"]["trustLint/v1"]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) >= 3  # source, alias, sink at minimum
        for entry in locations:
            loc = entry["location"]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            assert loc["region"]["startLine"] >= 1

    def test_sarif_clean_run_has_no_results(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        sarif = json.loads(render_sarif(analyze_paths([tmp_path])))
        assert sarif["runs"][0]["results"] == []


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config"])
        assert code == 1
        assert "CD201" in capsys.readouterr().out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main([str(tmp_path), "--no-config"])
        assert code == 0

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope"), "--no-config"])
        assert code == 2

    def test_disable_silences_rule(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--disable", "CD201"])
        assert code == 0

    def test_unknown_disable_rule_is_an_error(self, tmp_path, capsys):
        code = main([str(tmp_path), "--no-config", "--disable", "XX999"])
        assert code == 2

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_id in ("TB001", "SF101", "CD201", "CD202", "CD203",
                        "RB301", "RB302"):
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "CD201"

    def test_baseline_round_trip(self, tmp_path, capsys):
        _plant(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline), "--update-baseline"])
        assert code == 0
        assert baseline.is_file()
        # With the baseline applied the same tree is clean.
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_update_baseline_requires_target(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--update-baseline"])
        assert code == 2

    def test_taint_flag_runs_interprocedural_pass(self, tmp_path, capsys):
        _plant(tmp_path, _TAINT_LEAK, package="net", name="leaky")
        code = main([str(tmp_path), "--no-config"])
        assert code == 0  # clean without --taint: SF101 cannot see the alias
        code = main([str(tmp_path), "--no-config", "--taint"])
        assert code == 1
        out = capsys.readouterr().out
        assert "SF110" in out
        assert "trace:" in out

    def test_sarif_format(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--format", "sarif"])
        assert code == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"][0]["ruleId"] == "CD201"

    def test_jobs_flag_is_deterministic(self, tmp_path):
        for i in range(6):
            _plant(tmp_path, name=f"badmod{i}")
        seq = analyze_paths([tmp_path], jobs=1)
        par = analyze_paths([tmp_path], jobs=2)
        assert ([f.fingerprint() for f in seq.findings]
                == [f.fingerprint() for f in par.findings])
        assert len(seq.findings) == 6

    def test_graph_subcommand(self, tmp_path, capsys):
        _plant(tmp_path, "from repro.net import callee\n\n"
                         "def caller():\n"
                         "    return callee.helper()\n",
               package="net", name="entry")
        _plant(tmp_path, "def helper():\n    return 1\n",
               package="net", name="callee")
        code = main(["graph", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.net.entry.caller -> repro.net.callee.helper" in out

    def test_graph_focus_filters_edges(self, tmp_path, capsys):
        _plant(tmp_path, "from repro.net import callee\n\n"
                         "def caller():\n"
                         "    return callee.helper()\n",
               package="net", name="entry")
        _plant(tmp_path, "def helper():\n    return 1\n",
               package="net", name="callee")
        code = main(["graph", str(tmp_path), "--focus", "repro.nothere"])
        assert code == 0
        assert "->" not in capsys.readouterr().out


class TestUpdateBaseline:
    def test_fresh_write_reports_stats_and_silences(self, tmp_path, capsys):
        _plant(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline), "--update-baseline"])
        assert code == 0
        assert "1 added, 0 removed, 0 kept" in capsys.readouterr().out
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        (entry,) = payload["entries"].values()
        assert entry["rule"] == "CD201"
        assert entry["module"] == "repro.crypto.badmod"

    def test_fresh_write_drops_fixed_findings(self, tmp_path, capsys):
        _plant(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(tmp_path), "--no-config",
              "--baseline", str(baseline), "--update-baseline"])
        # Fix the violation, re-write: the stale entry drops out.
        (tmp_path / "repro" / "crypto" / "badmod.py").write_text("x = 1\n")
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline), "--update-baseline"])
        assert code == 0
        assert "0 added, 1 removed, 0 kept" in capsys.readouterr().out
        assert json.loads(baseline.read_text())["entries"] == {}

    def test_merge_keeps_unobserved_entries(self, tmp_path, capsys):
        _plant(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(tmp_path), "--no-config",
              "--baseline", str(baseline), "--update-baseline"])
        # A second violation appears; --merge adds it while keeping the
        # first entry even though we now scan only the new file.
        other = _plant(tmp_path, "import random\n",
                       package="flock", name="alsobad")
        capsys.readouterr()
        code = main([str(other / "repro" / "flock"), "--no-config",
                     "--baseline", str(baseline),
                     "--update-baseline", "--merge"])
        assert code == 0
        assert "1 added, 0 removed, 1 kept" in capsys.readouterr().out
        entries = json.loads(baseline.read_text())["entries"]
        assert {e["module"] for e in entries.values()} == {
            "repro.crypto.badmod", "repro.flock.alsobad"}
        # The merged baseline silences the whole tree.
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline)])
        assert code == 0
