"""Reporters and the repro-lint command line."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import analyze_paths, render_json, render_text
from repro.analysis.cli import main


def _plant(tmp_path, source: str = "import random\n"):
    pkg = tmp_path / "repro" / "crypto"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").touch()
    (pkg / "__init__.py").touch()
    (pkg / "badmod.py").write_text(textwrap.dedent(source))
    return tmp_path


class TestReporters:
    def test_text_report_lists_location_and_rule(self, tmp_path):
        _plant(tmp_path)
        report = analyze_paths([tmp_path])
        text = render_text(report)
        assert "CD201" in text
        assert "badmod.py:1:" in text
        assert "1 finding(s)" in text

    def test_json_report_is_parseable_and_stable(self, tmp_path):
        _plant(tmp_path)
        report = analyze_paths([tmp_path])
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "CD201"
        assert payload["findings"][0]["module"] == "repro.crypto.badmod"
        assert payload["findings"][0]["fingerprint"]

    def test_clean_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = analyze_paths([tmp_path])
        assert "0 finding(s)" in render_text(report)
        assert json.loads(render_json(report))["clean"] is True


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config"])
        assert code == 1
        assert "CD201" in capsys.readouterr().out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main([str(tmp_path), "--no-config"])
        assert code == 0

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope"), "--no-config"])
        assert code == 2

    def test_disable_silences_rule(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--disable", "CD201"])
        assert code == 0

    def test_unknown_disable_rule_is_an_error(self, tmp_path, capsys):
        code = main([str(tmp_path), "--no-config", "--disable", "XX999"])
        assert code == 2

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_id in ("TB001", "SF101", "CD201", "CD202", "CD203",
                        "RB301", "RB302"):
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "CD201"

    def test_baseline_round_trip(self, tmp_path, capsys):
        _plant(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline), "--update-baseline"])
        assert code == 0
        assert baseline.is_file()
        # With the baseline applied the same tree is clean.
        code = main([str(tmp_path), "--no-config",
                     "--baseline", str(baseline)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_update_baseline_requires_target(self, tmp_path, capsys):
        _plant(tmp_path)
        code = main([str(tmp_path), "--no-config", "--update-baseline"])
        assert code == 2
