"""Tier-1 gate: TRUST-lint reports zero findings over this repository.

This is the merge-time contract from ISSUE 1: every rule runs over
``src/`` with an *empty* baseline and finds nothing — so any future PR
that logs a template, imports stdlib random into the crypto substrate,
or punches through the layering DAG fails the suite.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_analysis_pass_is_clean_over_src():
    # --taint includes the interprocedural SF110/SF111 pass, --det the
    # determinism/shard-isolation pass (DT6xx/RC61x), --contract the
    # wire-contract conformance pass (CT7xx) and --sc the constant-time
    # side-channel pass (SC8xx), so aliased leaks, cross-call timing
    # compares, hash-order-dependent output, shard-boundary escapes,
    # client/server schema drift and secret-dependent control flow all
    # gate merges.
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--taint", "--det",
         "--contract", "--sc", "src"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, (
        f"TRUST-lint found violations:\n{proc.stdout}\n{proc.stderr}")
    assert "0 finding(s)" in proc.stdout


def test_examples_and_benchmarks_parse_cleanly():
    # The satellite trees are linted too, but only for the robustness
    # rules: examples legitimately print keys they generate for display.
    from repro.analysis import AnalysisConfig, analyze_paths

    config = AnalysisConfig(disabled_rules=("SF101",))
    report = analyze_paths(
        [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"], config)
    assert report.parse_errors == []
    assert [f for f in report.findings if f.rule.startswith("RB")] == []
