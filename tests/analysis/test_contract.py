"""CT700-CT705 — wire-contract extraction & conformance fixtures.

A three-module client/codec/server fixture protocol that is contract-
clean as written, plus one seeded mutation per CT rule asserting that
exactly that rule fires; config tests for ``[tool.trust-lint.contract]``;
CLI tests for ``repro-lint contract`` / ``--contract`` / ``--stats``;
and a subprocess byte-stability check across ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, analyze_sources
from repro.analysis.cli import main
from repro.analysis.contract import (contract_payload, extract_contract,
                                     render_contract, run_contract)
from repro.analysis.core import ModuleContext

REPO_ROOT = Path(__file__).resolve().parents[2]

# --------------------------------------------------------------- fixture

CODEC = """
PROTOCOL_VERSION = 1
SUPPORTED_PROTOCOL_VERSIONS = frozenset({1})

MSG_PING = "ping"
MSG_PONG = "pong"


class ProtocolError(Exception):
    def __init__(self, reason, detail=""):
        super().__init__(reason)
        self.reason = reason
        self.detail = detail


class Envelope:
    def __init__(self, msg_type, fields, version=PROTOCOL_VERSION):
        self.msg_type = msg_type
        self.fields = dict(fields)
        self.version = version
        self.mac = b""

    def set_mac(self, tag):
        self.mac = tag
        self.fields["mac"] = tag
        return self

    def require(self, *names):
        for name in names:
            if name not in self.fields:
                raise ProtocolError("malformed-message", name)
        return self


def decode_envelope(frame):
    try:
        msg_type, version, fields = frame
    except (TypeError, ValueError) as exc:
        raise ProtocolError("malformed-message", str(exc))
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ProtocolError("unsupported-version", str(version))
    return Envelope(msg_type, fields, version=version)
"""

SERVER = """
from fix.codec import (MSG_PING, MSG_PONG, SUPPORTED_PROTOCOL_VERSIONS,
                       Envelope, ProtocolError)

ENDPOINTS = {}


def _endpoint(registry, msg_type, summary):
    def wrap(func):
        registry[msg_type] = (func.__name__, summary)
        return func
    return wrap


class Server:
    def _reject(self, reason, detail):
        return ProtocolError(reason, detail)

    def dispatch(self, envelope):
        if envelope.version not in SUPPORTED_PROTOCOL_VERSIONS:
            raise self._reject("unsupported-version", str(envelope.version))
        if envelope.msg_type not in ENDPOINTS:
            raise self._reject("unknown-endpoint", envelope.msg_type)
        return self._serve_ping(envelope)

    @_endpoint(ENDPOINTS, MSG_PING, "answer one ping")
    def _serve_ping(self, envelope):
        envelope.require("blob", "nonce", "mac")
        if not envelope.fields["blob"]:
            raise self._reject("bad-blob", "empty payload")
        reply = Envelope(MSG_PONG, {
            "blob": envelope.fields["blob"],
            "nonce": envelope.fields["nonce"],
        })
        return reply.set_mac(b"tag")
"""

CLIENT = """
from fix.codec import MSG_PING, Envelope, ProtocolError

RETRYABLE = (
    "unsupported-version",
    "unknown-endpoint",
    "bad-blob",
    "malformed-message",
)


class Client:
    def __init__(self, server):
        self.server = server

    def ping(self, blob):
        ping = Envelope(MSG_PING, {"blob": blob, "nonce": b"n1"})
        ping.set_mac(b"tag")
        try:
            reply = self.server.dispatch(ping)
        except ProtocolError as exc:
            if exc.reason in RETRYABLE:
                return None
            raise
        reply.require("blob", "nonce", "mac")
        return reply.fields["blob"]
"""


def fixture_sources(codec=CODEC, server=SERVER, client=CLIENT):
    return {"fix.codec": textwrap.dedent(codec),
            "fix.server": textwrap.dedent(server),
            "fix.client": textwrap.dedent(client)}


def fixture_config(**overrides) -> AnalysisConfig:
    base = replace(
        AnalysisConfig.default(),
        contract_server_modules=("fix.server",),
        contract_codec_modules=("fix.codec",),
        contract_client_modules=("fix.client",),
        contract_read_modules=("fix.client",),
        contract_consumer_paths=(),
        contract_golden="",
    )
    return replace(base, **overrides) if overrides else base


def ct_lint(sources, config=None):
    config = config if config is not None else fixture_config()
    findings = analyze_sources(sources, config=config, contract=True)
    return [f for f in findings if f.rule.startswith("CT")]


def build_ctxs(sources):
    return [ModuleContext.build(Path(f"{m}.py"), f"{m}.py", m, s)
            for m, s in sources.items()]


def ct_rules(findings) -> set:
    return {f.rule for f in findings}


# -------------------------------------------------------------- extraction


class TestExtraction:
    def test_base_fixture_is_contract_clean(self):
        assert ct_lint(fixture_sources()) == []

    def test_payload_shape(self):
        contract = extract_contract(build_ctxs(fixture_sources()),
                                    fixture_config())
        payload = contract_payload(contract)
        assert payload["protocol"] == {"wire_version": 1,
                                       "supported_versions": [1]}
        assert payload["endpoints"]["ping"]["summary"] == "answer one ping"
        assert payload["endpoints"]["ping"]["request_fields"] == [
            "blob", "mac", "nonce"]
        assert payload["endpoints"]["ping"]["responses"] == ["pong"]
        assert payload["client_messages"]["ping"] == ["blob", "mac",
                                                      "nonce"]
        assert payload["server_messages"]["pong"] == ["blob", "mac",
                                                      "nonce"]
        assert payload["reason_codes"] == [
            "bad-blob", "malformed-message", "unknown-endpoint",
            "unsupported-version"]

    def test_render_is_canonical_and_newline_terminated(self):
        _, payload = run_contract(build_ctxs(fixture_sources()),
                                  fixture_config())
        text = render_contract(payload)
        assert text.endswith("\n")
        assert json.loads(text) == payload
        # Canonical: keys sorted at every level.
        assert text == render_contract(json.loads(text))

    def test_extraction_is_independent_of_module_order(self):
        sources = fixture_sources()
        forward = contract_payload(
            extract_contract(build_ctxs(sources), fixture_config()))
        reversed_ctxs = list(reversed(build_ctxs(sources)))
        backward = contract_payload(
            extract_contract(reversed_ctxs, fixture_config()))
        assert forward == backward


# ---------------------------------------------------- one mutation per rule


class TestSeededMutations:
    def test_ct700_client_sends_unregistered_type(self):
        client = CLIENT.replace(
            "from fix.codec import MSG_PING, Envelope, ProtocolError",
            "from fix.codec import MSG_PING, Envelope, ProtocolError\n\n"
            "MSG_PUSH = \"push\"",
        ) + textwrap.dedent("""
            def push(server, blob):
                note = Envelope(MSG_PUSH, {"blob": blob})
                note.set_mac(b"tag")
                return server.dispatch(note)
        """)
        findings = ct_lint(fixture_sources(client=client))
        assert ct_rules(findings) == {"CT700"}
        assert "push" in findings[0].message
        assert findings[0].path == "fix.client.py"

    def test_ct700_endpoint_unreachable_from_client(self):
        server = SERVER + textwrap.dedent("""
            MSG_PUSH = "push"


            class PushServer(Server):
                @_endpoint(ENDPOINTS, MSG_PUSH, "accept a push")
                def _serve_push(self, envelope):
                    envelope.require("blob", "mac")
                    reply = Envelope(MSG_PONG, {
                        "blob": envelope.fields["blob"],
                        "nonce": b"n2",
                    })
                    return reply.set_mac(b"tag")
        """)
        findings = ct_lint(fixture_sources(server=server))
        assert ct_rules(findings) == {"CT700"}
        assert "no client call shape" in findings[0].message

    def test_ct701_server_field_never_read(self):
        server = SERVER.replace(
            '"nonce": envelope.fields["nonce"],',
            '"nonce": envelope.fields["nonce"],\n'
            '            "extra": b"",')
        findings = ct_lint(fixture_sources(server=server))
        assert ct_rules(findings) == {"CT701"}
        assert "'extra'" in findings[0].message
        assert "never read" in findings[0].message

    def test_ct701_client_field_never_decoded(self):
        client = CLIENT.replace('{"blob": blob, "nonce": b"n1"}',
                                '{"blob": blob, "nonce": b"n1", '
                                '"junk": b"x"}')
        findings = ct_lint(fixture_sources(client=client))
        assert ct_rules(findings) == {"CT701"}
        assert "'junk'" in findings[0].message
        assert "never decoded" in findings[0].message

    def test_ct701_server_requires_unproduced_field(self):
        server = SERVER.replace(
            'envelope.require("blob", "nonce", "mac")',
            'envelope.require("blob", "nonce", "proof", "mac")')
        findings = ct_lint(fixture_sources(server=server))
        assert ct_rules(findings) == {"CT701"}
        assert "'proof'" in findings[0].message
        assert "never produces" in findings[0].message

    def test_ct702_unobserved_reason_code(self):
        server = SERVER.replace(
            'raise self._reject("bad-blob", "empty payload")',
            'raise self._reject("bad-blob", "empty payload")\n'
            '        if len(envelope.fields) > 16:\n'
            '            raise self._reject("quota-exceeded", "too big")')
        findings = ct_lint(fixture_sources(server=server))
        assert ct_rules(findings) == {"CT702"}
        assert "quota-exceeded" in findings[0].message

    def test_ct702_consumer_path_assertions_count(self, tmp_path,
                                                  monkeypatch):
        server = SERVER.replace(
            'raise self._reject("bad-blob", "empty payload")',
            'raise self._reject("bad-blob", "empty payload")\n'
            '        if len(envelope.fields) > 16:\n'
            '            raise self._reject("quota-exceeded", "too big")')
        consumer = tmp_path / "consumers"
        consumer.mkdir()
        (consumer / "test_quota.py").write_text(
            'def test_quota(client):\n'
            '    assert client.reason == "quota-exceeded"\n')
        monkeypatch.chdir(tmp_path)
        config = fixture_config(contract_consumer_paths=("consumers",))
        assert ct_lint(fixture_sources(server=server), config=config) == []

    def test_ct703_gate_disagrees_with_codec(self):
        server = SERVER.replace(
            "if envelope.version not in SUPPORTED_PROTOCOL_VERSIONS:",
            "if envelope.version not in {1, 2}:")
        findings = ct_lint(fixture_sources(server=server))
        assert ct_rules(findings) == {"CT703"}
        assert "[1, 2]" in findings[0].message

    def test_ct703_missing_dispatch_gate(self):
        server = SERVER.replace(
            "        if envelope.version not in SUPPORTED_PROTOCOL_VERSIONS:"
            "\n            raise self._reject(\"unsupported-version\", "
            "str(envelope.version))\n", "")
        findings = ct_lint(fixture_sources(server=server))
        # The gate is gone *and* its reason code with it, so the
        # vocabulary check in the client goes stale too.
        assert "CT703" in ct_rules(findings)
        ct703 = [f for f in findings if f.rule == "CT703"]
        assert "without an envelope-version gate" in ct703[0].message

    def test_ct704_decode_swallows_malformed_input(self):
        codec = CODEC.replace(
            "    except (TypeError, ValueError) as exc:\n"
            "        raise ProtocolError(\"malformed-message\", str(exc))",
            "    except (TypeError, ValueError):\n"
            "        msg_type, version, fields = \"ping\", 1, {}")
        findings = ct_lint(fixture_sources(codec=codec))
        assert ct_rules(findings) == {"CT704"}
        assert "swallows" in findings[0].message

    def test_ct704_unchecked_reply_read(self):
        client = CLIENT.replace('reply.require("blob", "nonce", "mac")',
                                'reply.require("nonce", "mac")')
        findings = ct_lint(fixture_sources(client=client))
        assert ct_rules(findings) == {"CT704"}
        assert "'blob'" in findings[0].message
        assert "require()" in findings[0].message

    def test_ct704_defaulted_reply_read(self):
        client = CLIENT.replace('return reply.fields["blob"]',
                                'return reply.fields.get("blob", b"")')
        findings = ct_lint(fixture_sources(client=client))
        assert ct_rules(findings) == {"CT704"}
        assert "defaulted" in findings[0].message

    def test_ct705_breaking_and_additive_drift(self, tmp_path):
        golden = tmp_path / "contract.json"
        _, payload = run_contract(build_ctxs(fixture_sources()),
                                  fixture_config())
        golden.write_text(render_contract(payload), encoding="utf-8")
        config = fixture_config(contract_golden=str(golden))
        assert ct_lint(fixture_sources(), config=config) == []

        # Remove a reply field (breaking) and add a reason (additive).
        server = SERVER.replace('"nonce": envelope.fields["nonce"],\n', '')
        server = server.replace(
            'raise self._reject("bad-blob", "empty payload")',
            'raise self._reject("bad-blob", "empty payload")\n'
            '        if len(envelope.fields) > 16:\n'
            '            raise self._reject("quota-exceeded", "too big")')
        client = CLIENT.replace('"bad-blob",',
                                '"bad-blob",\n    "quota-exceeded",')
        client = client.replace('reply.require("blob", "nonce", "mac")',
                                'reply.require("blob", "mac")')
        findings = ct_lint(fixture_sources(server=server, client=client),
                           config=config)
        assert ct_rules(findings) == {"CT705"}
        removed = [f for f in findings if "removed" in f.message]
        added = [f for f in findings if "added" in f.message]
        assert removed and all(f.severity == "error" for f in removed)
        assert added and all(f.severity == "warning" for f in added)

    def test_ct705_missing_golden_is_a_warning(self, tmp_path):
        config = fixture_config(
            contract_golden=str(tmp_path / "absent.json"))
        findings = ct_lint(fixture_sources(), config=config)
        assert ct_rules(findings) == {"CT705"}
        assert findings[0].severity == "warning"
        assert "missing" in findings[0].message

    def test_ct705_unreadable_golden_is_an_error(self, tmp_path):
        golden = tmp_path / "contract.json"
        golden.write_text("{not json", encoding="utf-8")
        config = fixture_config(contract_golden=str(golden))
        findings = ct_lint(fixture_sources(), config=config)
        assert ct_rules(findings) == {"CT705"}
        assert findings[0].severity == "error"


# ------------------------------------------------- config & suppressions


class TestConfigAndSuppression:
    def test_contract_subtable_round_trip(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.trust-lint.contract]
            server-modules = ["fix.server"]
            codec-modules = ["fix.codec"]
            client-modules = ["fix.client"]
            read-modules = ["fix.client", "fix.ui"]
            consumer-paths = ["tests"]
            golden = "artifacts/contract.json"
            decode-patterns = ["decode*", "parse_*"]
            envelope-names = ["Envelope", "Frame"]
        """), encoding="utf-8")
        config = AnalysisConfig.from_pyproject(pyproject)
        assert config.contract_server_modules == ("fix.server",)
        assert config.contract_read_modules == ("fix.client", "fix.ui")
        assert config.contract_golden == "artifacts/contract.json"
        assert config.is_contract_decode_name("parse_frame")
        assert config.is_contract_envelope_name("Frame")

    def test_unknown_contract_key_is_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.trust-lint.contract]\n"
                             "golden-file = \"x.json\"\n",
                             encoding="utf-8")
        with pytest.raises(ValueError, match="golden-file"):
            AnalysisConfig.from_pyproject(pyproject)

    def test_disabled_rule_is_skipped(self):
        server = SERVER.replace(
            '"nonce": envelope.fields["nonce"],',
            '"nonce": envelope.fields["nonce"],\n'
            '            "extra": b"",')
        config = fixture_config(
            disabled_rules=fixture_config().disabled_rules + ("CT701",))
        assert ct_lint(fixture_sources(server=server), config=config) == []

    def test_line_suppression_silences_one_site(self):
        client = CLIENT.replace(
            'reply.require("blob", "nonce", "mac")',
            'reply.require("nonce", "mac")')
        client = client.replace(
            'return reply.fields["blob"]',
            'return reply.fields["blob"]  # trust-lint: disable=CT704')
        assert ct_lint(fixture_sources(client=client)) == []


# ------------------------------------------------------------------- CLI


def _write_project(tmp_path: Path) -> Path:
    proj = tmp_path / "proj"
    pkg = proj / "fix"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    for module, source in fixture_sources().items():
        (pkg / f"{module.split('.')[1]}.py").write_text(source,
                                                        encoding="utf-8")
    (proj / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.trust-lint]
        paths = ["fix"]

        [tool.trust-lint.contract]
        server-modules = ["fix.server"]
        codec-modules = ["fix.codec"]
        client-modules = ["fix.client"]
        read-modules = ["fix.client"]
        consumer-paths = []
        golden = ""
    """), encoding="utf-8")
    return proj


class TestCli:
    def test_contract_flag_clean_project(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.chdir(_write_project(tmp_path))
        assert main(["--contract"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_contract_flag_reports_mutation(self, tmp_path, monkeypatch,
                                            capsys):
        proj = _write_project(tmp_path)
        client = proj / "fix" / "client.py"
        client.write_text(
            client.read_text(encoding="utf-8").replace(
                'reply.require("blob", "nonce", "mac")',
                'reply.require("nonce", "mac")'),
            encoding="utf-8")
        monkeypatch.chdir(proj)
        assert main(["--contract"]) == 1
        assert "CT704" in capsys.readouterr().out

    def test_contract_subcommand_prints_canonical_json(self, tmp_path,
                                                       monkeypatch,
                                                       capsys):
        monkeypatch.chdir(_write_project(tmp_path))
        assert main(["contract"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["endpoints"]["ping"]["responses"] == ["pong"]

    def test_contract_subcommand_write(self, tmp_path, monkeypatch):
        proj = _write_project(tmp_path)
        monkeypatch.chdir(proj)
        out = proj / "contract.json"
        assert main(["contract", "--write", str(out)]) == 0
        assert json.loads(out.read_text(encoding="utf-8"))["contract_version"] == 1

    def test_stats_breakdown_on_stderr(self, tmp_path, monkeypatch,
                                       capsys):
        monkeypatch.chdir(_write_project(tmp_path))
        assert main(["--contract", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "stats: lint" in err
        assert "stats: contract" in err
        assert "stats: total" in err

    def test_stats_appends_perf_row_when_log_dir_exists(self, tmp_path,
                                                        monkeypatch):
        proj = _write_project(tmp_path)
        results = proj / "benchmarks" / "results"
        results.mkdir(parents=True)
        monkeypatch.chdir(proj)
        assert main(["--contract", "--stats"]) == 0
        row = (results / "analysis_perf.txt").read_text(encoding="utf-8")
        assert row.startswith("repro-lint --stats:")
        assert "contract=" in row

    def test_sarif_output_carries_ct_rule(self, tmp_path, monkeypatch,
                                          capsys):
        proj = _write_project(tmp_path)
        server = proj / "fix" / "server.py"
        server.write_text(
            server.read_text(encoding="utf-8").replace(
                '"nonce": envelope.fields["nonce"],',
                '"nonce": envelope.fields["nonce"],\n'
                '            "extra": b"",'),
            encoding="utf-8")
        monkeypatch.chdir(proj)
        assert main(["--contract", "--format", "sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert "CT701" in {r["ruleId"]
                           for r in sarif["runs"][0]["results"]}

    def test_contract_json_is_byte_stable_across_hash_seeds(self,
                                                            tmp_path):
        proj = _write_project(tmp_path)
        outputs = []
        for seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            src = str(REPO_ROOT / "src")
            env["PYTHONPATH"] = src
            proc = subprocess.run(
                [sys.executable, "-m", "repro.analysis", "contract",
                 "fix"],
                cwd=proj, env=env, capture_output=True, timeout=120)
            assert proc.returncode == 0, proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
