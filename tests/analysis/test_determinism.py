"""DT6xx/RC61x — determinism & shard-isolation rule fixtures.

One seeded mutation fixture per rule, each asserting the expected
finding *and* its trace; config tests for the ``[tool.trust-lint.det]``
sub-table; cross-stage interaction tests (suppressions and baselines
keep rule families distinct); and the ``--changed-only`` pre-commit
filter against a throwaway git repo.
"""

from __future__ import annotations

import subprocess
import textwrap

import pytest

from repro.analysis import AnalysisConfig, analyze_sources
from repro.analysis.baseline import update_baseline
from repro.analysis.cli import main


def det_lint(sources, config=None, taint=False):
    """Run the rules plus the determinism pass over fixture modules."""
    if isinstance(sources, str):
        sources = {"repro.net.fixture": sources}
    sources = {m: textwrap.dedent(s) for m, s in sources.items()}
    return analyze_sources(sources, config=config, taint=taint, det=True)


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# --------------------------------------------------------------- fixtures

WALL_CLOCK = """
import time

def stamp(event):
    return (time.time(), event)
"""

UNSEEDED_RNG = """
import random

def jitter():
    return random.random() * 0.1
"""

ID_KEYING = """
def register(handlers, handler):
    handlers[id(handler)] = handler
"""

SET_ORDER_TO_SINK = """
def summarize(shards):
    active = {name for name in shards if shards[name]}
    report = []
    for name in active:
        report.append(name)
    return ", ".join(report)
"""

ENV_READ = """
import os

def shard_count():
    return int(os.environ.get("SHARDS", "4"))
"""

FLOAT_ACCUMULATION = """
def total_latency(samples):
    seen = set(samples)
    return sum(seen)
"""

MUTABLE_GLOBAL = """
CACHE = {}

def remember(key, value):
    CACHE[key] = value
"""

CLASS_ATTR_MUTATION = """
class Counter:
    total = 0

def bump():
    Counter.total += 1
"""

SHARD_ESCAPE = {
    "repro.net.webserver": """
        class WebServer:
            def __init__(self):
                self._sessions = {}
    """,
    "repro.runtime.dispatcher": """
        from repro.net.webserver import WebServer

        def steal(victim: WebServer):
            return victim._sessions
    """,
}


class TestNondeterminismSources:
    def test_dt601_wall_clock_read(self):
        findings = by_rule(det_lint(WALL_CLOCK), "DT601")
        assert len(findings) == 1
        assert "time.time" in findings[0].message
        assert findings[0].line == 5
        assert any("wall-clock" in hop.note for hop in findings[0].trace)

    def test_dt602_global_rng_draw(self):
        findings = by_rule(det_lint(UNSEEDED_RNG), "DT602")
        assert len(findings) == 1
        assert "random.random" in findings[0].message

    def test_dt602_seeded_constructor_is_clean(self):
        clean = """
        import random

        def stream(seed):
            return random.Random(seed)
        """
        assert not by_rule(det_lint(clean), "DT602")

    def test_dt603_id_keying(self):
        findings = by_rule(det_lint(ID_KEYING), "DT603")
        assert len(findings) == 1
        assert "id()" in findings[0].message

    def test_dt604_set_order_reaches_join(self):
        findings = by_rule(det_lint(SET_ORDER_TO_SINK), "DT604")
        assert len(findings) == 1
        finding = findings[0]
        assert "PYTHONHASHSEED" in finding.message
        # Full construction-to-sink trace, every hop anchored.
        notes = [hop.note for hop in finding.trace]
        assert any("unordered set" in note for note in notes)
        assert any("reaches" in note for note in notes)
        assert all(hop.path and hop.line for hop in finding.trace)

    def test_dt604_sorted_launders_order(self):
        clean = """
        def summarize(shards):
            active = {name for name in shards if shards[name]}
            return ", ".join(sorted(active))
        """
        assert not by_rule(det_lint(clean), "DT604")

    def test_dt605_environ_read(self):
        findings = by_rule(det_lint(ENV_READ), "DT605")
        assert findings
        assert "os.environ" in findings[0].message

    def test_dt606_float_accumulation_is_warning(self):
        findings = by_rule(det_lint(FLOAT_ACCUMULATION), "DT606")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "not associative" in findings[0].message
        assert any("unordered set" in hop.note for hop in findings[0].trace)


class TestShardIsolationEscapes:
    def test_rc610_module_global_mutation(self):
        findings = by_rule(det_lint(MUTABLE_GLOBAL), "RC610")
        assert len(findings) == 1
        finding = findings[0]
        assert "CACHE" in finding.message
        # Two hops: the definition and the mutation site.
        assert len(finding.trace) == 2
        assert "defined here" in finding.trace[0].note
        assert finding.trace[0].line == 2
        assert finding.trace[1].line == finding.line

    def test_rc610_import_time_construction_is_clean(self):
        clean = """
        REGISTRY = {}

        def _register(name, value):
            REGISTRY[name] = value
        REGISTRY["a"] = 1
        """
        # Module-level writes are import-time; only the function-body
        # mutation flags.
        findings = by_rule(det_lint(clean), "RC610")
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_rc611_class_attribute_mutation(self):
        findings = by_rule(det_lint(CLASS_ATTR_MUTATION), "RC611")
        assert len(findings) == 1
        assert "Counter.total" in findings[0].message

    def test_rc611_instance_attribute_is_clean(self):
        clean = """
        class Counter:
            def __init__(self):
                self.total = 0

            def bump(self):
                self.total += 1
        """
        assert not by_rule(det_lint(clean), "RC611")

    def test_rc612_private_reach_in_on_shard_root(self):
        findings = by_rule(det_lint(SHARD_ESCAPE), "RC612")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == "warning"
        assert "WebServer._sessions" in finding.message
        assert finding.module == "repro.runtime.dispatcher"
        assert any("reach-in" in hop.note for hop in finding.trace)

    def test_rc612_conduit_call_is_clean(self):
        sources = dict(SHARD_ESCAPE)
        sources["repro.runtime.dispatcher"] = """
            from repro.net.webserver import WebServer

            def migrate(source: WebServer, target: WebServer, account):
                blob = source.export_account(account)
                return target.import_account(blob)
        """
        assert not by_rule(det_lint(sources), "RC612")


class TestDetConfig:
    def test_pyproject_det_overrides(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.trust-lint.det]
            exempt-modules = ["somepkg.generated"]
            extend-order-sinks = ["publish*"]
            extend-sanitizers = ["stable_order"]
            shard-packages = ["somepkg.workers"]
            extend-conduits = ["hand_off"]
        """))
        config = AnalysisConfig.from_pyproject(pyproject)
        assert config.in_det_exempt_module("somepkg.generated")
        assert not config.in_det_exempt_module("repro.analysis.engine")
        assert config.is_det_order_sink_name("publish_report")
        assert config.is_det_order_sanitizer_name("stable_order")
        assert config.in_det_shard_package("somepkg.workers.pool")
        assert config.is_det_conduit_name("hand_off")

    def test_unknown_det_key_is_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.trust-lint.det]\nextend-sink = []\n")
        with pytest.raises(ValueError, match="extend-sink"):
            AnalysisConfig.from_pyproject(pyproject)

    def test_extended_sink_trips_dt604(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.trust-lint.det]
            extend-order-sinks = ["publish*"]
        """))
        config = AnalysisConfig.from_pyproject(pyproject)
        source = """
        def publish_names(names):
            pass

        def emit(pool):
            members = set(pool)
            publish_names(members)
        """
        findings = by_rule(det_lint(source, config=config), "DT604")
        assert len(findings) == 1
        assert "publish_names" in findings[0].message


class TestCrossStageInteraction:
    def test_sf110_suppression_does_not_silence_dt604(self):
        """Per-rule suppressions are rule-scoped, not stage-scoped."""
        source = """
        # trust-lint: disable-file=SF110

        def leak(session_key, shards):
            alias = session_key
            pending = set(shards)
            print(alias, pending)
        """
        findings = det_lint(source, taint=True)
        assert not by_rule(findings, "SF110")  # suppressed
        assert by_rule(findings, "DT604")  # still reported

    def test_det_suppression_does_not_silence_sf110(self):
        source = """
        # trust-lint: disable-file=DT604

        def leak(session_key, shards):
            alias = session_key
            pending = set(shards)
            print(alias, pending)
        """
        findings = det_lint(source, taint=True)
        assert by_rule(findings, "SF110")
        assert not by_rule(findings, "DT604")

    def test_baseline_merge_keeps_rule_families_distinct(self, tmp_path):
        """An SF and a DT finding on the same line stay separate
        baseline entries — fingerprints include the rule id."""
        source = textwrap.dedent("""
        def leak(session_key, shards):
            alias = session_key
            pending = set(shards)
            print(alias, pending)
        """)
        findings = det_lint({"repro.net.fixture": source}, taint=True)
        sf = by_rule(findings, "SF110")
        dt = by_rule(findings, "DT604")
        assert sf and dt
        assert sf[0].fingerprint() != dt[0].fingerprint()
        path = tmp_path / "baseline.json"
        update_baseline(str(path), sf)
        added, removed, kept = update_baseline(str(path), dt, merge=True)
        assert added == len(dt) and removed == 0 and kept == len(sf)


def _git(tmp_path, *args):
    subprocess.run(["git", *args], cwd=tmp_path, check=True,
                   capture_output=True)


class TestChangedOnly:
    @pytest.fixture
    def fixture_repo(self, tmp_path):
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "config", "user.email", "t@example.com")
        _git(tmp_path, "config", "user.name", "t")
        clean = tmp_path / "clean.py"
        clean.write_text("def ok():\n    return 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def ok():\n    return 2\n")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-qm", "seed")
        return tmp_path

    def test_only_changed_files_are_scanned(self, fixture_repo,
                                            monkeypatch, capsys):
        (fixture_repo / "dirty.py").write_text(
            "import random\n\ndef jitter():\n    return random.random()\n")
        monkeypatch.chdir(fixture_repo)
        code = main([".", "--no-config", "--det", "--changed-only"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DT602" in out
        assert "1 file(s)" in out  # clean.py was filtered out

    def test_no_changes_scans_nothing(self, fixture_repo, monkeypatch,
                                      capsys):
        monkeypatch.chdir(fixture_repo)
        code = main([".", "--no-config", "--det", "--changed-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 file(s)" in out

    def test_since_ref_widens_the_diff(self, fixture_repo, monkeypatch,
                                       capsys):
        (fixture_repo / "dirty.py").write_text(
            "import random\n\ndef jitter():\n    return random.random()\n")
        _git(fixture_repo, "add", "-A")
        _git(fixture_repo, "commit", "-qm", "introduce rng")
        monkeypatch.chdir(fixture_repo)
        # vs HEAD: nothing pending; vs HEAD~1: the rng file.
        assert main([".", "--no-config", "--det", "--changed-only"]) == 0
        capsys.readouterr()
        code = main([".", "--no-config", "--det", "--changed-only",
                     "--since", "HEAD~1"])
        assert code == 1
        assert "DT602" in capsys.readouterr().out

    def test_dependents_of_changed_files_are_rescanned(self, fixture_repo,
                                                       monkeypatch, capsys):
        """Editing a module pulls its importers/callers into the scan:
        clean.py has no edge to the edited file and stays filtered, but
        caller.py -> callee.py -> (edit) makes both scan again, and the
        dependency walk is transitive (outer.py -> caller.py)."""
        (fixture_repo / "callee.py").write_text(
            "def helper():\n    return 1\n")
        (fixture_repo / "caller.py").write_text(
            "from callee import helper\n\n\ndef use():\n"
            "    return helper()\n")
        (fixture_repo / "outer.py").write_text(
            "import caller\n\n\ndef run():\n    return caller.use()\n")
        _git(fixture_repo, "add", "-A")
        _git(fixture_repo, "commit", "-qm", "add call chain")
        (fixture_repo / "callee.py").write_text(
            "import random\n\n\ndef helper():\n"
            "    return random.random()\n")
        monkeypatch.chdir(fixture_repo)
        code = main([".", "--no-config", "--det", "--changed-only"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DT602" in out
        assert "3 file(s)" in out  # callee + caller + outer, not clean.py

    def test_outside_git_is_a_usage_error(self, tmp_path, monkeypatch,
                                          capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        code = main([".", "--no-config", "--changed-only"])
        assert code == 2
        assert "--changed-only" in capsys.readouterr().err
