"""The TRUST protocol model checker (repro.analysis.verify).

Three layers are covered: the Dolev-Yao knowledge closure (pure term
algebra), the explorer (clean exhaustive runs, determinism, truncation),
and the mutation harness — each deliberately broken protocol variant
must produce its designed counterexample with a readable trace.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import MUTATIONS, SCENARIOS, run_verify
from repro.analysis.verify.explorer import explore_scenario
from repro.analysis.verify.model import (
    ATK_PK,
    BIO_TPL,
    SRV_PK,
    SRV_SK,
    VerifyOptions,
    build_world,
    canonicalize,
    mac_term,
    msg,
    seal_term,
    sess_k,
)
from repro.analysis.verify.properties import close_knowledge, is_secret

#: Test depth: deep enough that every mutation's counterexample appears
#: (the deepest lives at depth 4), shallow enough to stay fast.
DEPTH = 6


def _verify(**kw):
    kw.setdefault("depth", DEPTH)
    return run_verify(**kw)


class TestKnowledgeClosure:
    def test_secrets_classified(self):
        assert is_secret(SRV_SK)
        assert is_secret(BIO_TPL)
        assert is_secret(sess_k(0))
        assert not is_secret(SRV_PK)
        assert not is_secret(ATK_PK)
        assert not is_secret(("sess", "atk"))  # the adversary's own value

    def test_seal_opens_only_with_known_private_key(self):
        to_attacker = frozenset({seal_term(ATK_PK, BIO_TPL)})
        to_server = frozenset({seal_term(SRV_PK, BIO_TPL)})
        assert BIO_TPL in close_knowledge(to_attacker, ("A",))
        assert BIO_TPL not in close_knowledge(to_server, ("A",))

    def test_mac_exposes_payload_but_never_key(self):
        pool = frozenset({mac_term(sess_k(0), BIO_TPL)})
        knowledge = close_knowledge(pool, ("A",))
        assert BIO_TPL in knowledge
        assert sess_k(0) not in knowledge

    def test_message_fields_decompose_recursively(self):
        pool = frozenset({
            msg("xfer", bundle=seal_term(ATK_PK, sess_k(3)))})
        assert sess_k(3) in close_knowledge(pool, ("A",))


class TestCleanExploration:
    def test_all_scenarios_exhaust_with_zero_findings(self):
        findings, stats = _verify()
        assert findings == []
        assert stats["exhausted"] is True
        assert stats["states"] > 0
        assert stats["transitions"] >= stats["states"] - len(SCENARIOS)
        assert {s["name"] for s in stats["scenarios"]} == set(SCENARIOS)
        assert all(s["exhausted"] for s in stats["scenarios"])

    def test_exploration_is_deterministic(self):
        first_findings, first_stats = _verify(mutations=("skip-replay-check",),
                                              entries=("login",))
        second_findings, second_stats = _verify(
            mutations=("skip-replay-check",), entries=("login",))
        assert [f.message for f in first_findings] \
            == [f.message for f in second_findings]
        assert [f.trace for f in first_findings] \
            == [f.trace for f in second_findings]
        assert first_stats["states"] == second_stats["states"]
        assert first_stats["transitions"] == second_stats["transitions"]

    def test_canonicalize_is_idempotent(self):
        for scenario in SCENARIOS.values():
            world = canonicalize(build_world(scenario))
            assert canonicalize(world) == world

    def test_budget_truncation_reports_pv400(self):
        findings, stats = _verify(entries=("login",), max_states=40)
        assert stats["exhausted"] is False
        pv400 = [f for f in findings if f.rule == "PV400"]
        assert len(pv400) == 1
        assert pv400[0].severity == "note"
        assert "max-states=40" in pv400[0].message
        # Partial coverage is a caveat, not a protocol violation.
        assert all(f.rule == "PV400" for f in findings)

    def test_unknown_entry_and_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown verify entry"):
            run_verify(entries=("bogus",), depth=2)
        with pytest.raises(ValueError, match="unknown mutation"):
            run_verify(mutations=("bogus",), depth=2)


#: Every deliberately broken variant and the invariant it must trip,
#: restricted to the scenario whose counterexample is shallowest.
MUTATION_EXPECTATIONS = [
    ("skip-login-signature-check", ("login",), {"PV402", "PV403"}),
    ("skip-replay-check", ("login",), {"PV403"}),
    ("skip-attestation-check", ("challenge",), {"PV402", "PV403"}),
    ("keep-sessions-on-reset", ("reset",), {"PV405"}),
    ("keep-old-device-records", ("transfer",), {"PV404"}),
    ("plaintext-transfer-bundle", ("transfer",), {"PV401"}),
    ("keep-key-on-login-failure", ("login",), {"PV405"}),
]


class TestMutationCounterexamples:
    def test_every_mutation_is_covered(self):
        assert {m for m, _, _ in MUTATION_EXPECTATIONS} == set(MUTATIONS)

    @pytest.mark.parametrize("mutation,entries,expected",
                             [(m, e, x) for m, e, x in MUTATION_EXPECTATIONS])
    def test_mutation_produces_counterexample(self, mutation, entries,
                                              expected):
        findings, _stats = _verify(entries=entries, mutations=(mutation,))
        assert expected <= {f.rule for f in findings}, \
            f"{mutation}: got {[f.rule for f in findings]}"
        for finding in findings:
            assert finding.message.startswith("[scenario=")
            assert finding.trace, "counterexample must carry a trace"

    def test_counterexample_trace_is_a_message_transcript(self):
        findings, _stats = _verify(entries=("transfer",),
                                   mutations=("plaintext-transfer-bundle",))
        (finding,) = [f for f in findings if f.rule == "PV401"]
        assert "secret reaches the adversary" in finding.message
        notes = [hop.note for hop in finding.trace]
        # The trace narrates the abstract message sequence, anchored at
        # the real src/repro/net functions each step models.
        assert any("transfer" in note for note in notes)
        assert all(hop.path.startswith(("src/repro/", "<"))
                   for hop in finding.trace)
        assert all(hop.line >= 1 for hop in finding.trace)

    def test_counterexample_is_bfs_minimal(self):
        """The reported depth is the shortest path to the violation."""
        violations, _stats = explore_scenario(
            SCENARIOS["login"],
            VerifyOptions(depth=4,
                          mutations=frozenset({"skip-replay-check"})))
        assert "PV403" in violations
        shallow = violations["PV403"]
        deeper, _ = explore_scenario(
            SCENARIOS["login"],
            VerifyOptions(depth=DEPTH,
                          mutations=frozenset({"skip-replay-check"})))
        assert deeper["PV403"].depth == shallow.depth
        assert shallow.depth <= 4
        assert shallow.steps


class TestAdversaryMatters:
    def test_replay_counterexample_needs_the_adversary(self):
        """With the network honest, skip-replay-check is unobservable."""
        findings, _stats = _verify(entries=("login",),
                                   mutations=("skip-replay-check",),
                                   adversary=False)
        assert [f.rule for f in findings] == []

    def test_attestation_counterexample_needs_malware(self):
        """The forged attestation comes from the on-device malware."""
        findings, _stats = _verify(entries=("challenge",),
                                   mutations=("skip-attestation-check",),
                                   malware=False)
        assert "PV402" not in {f.rule for f in findings}
