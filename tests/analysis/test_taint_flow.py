"""SF110/SF111 — interprocedural taint-flow rule fixtures.

Every rule gets true-positive and true-negative fixtures, the
cross-module cases exercise the project index + call graph, and the
trace tests pin the contract that each finding carries a full
source-to-sink path with a file:line on every hop.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze_source, analyze_sources
from repro.analysis.core import ModuleContext
from repro.analysis.taint import run_taint
from repro.analysis.config import AnalysisConfig

from .conftest import rule_ids


def taint_lint(sources, config=None):
    """Run the full rule set *plus* the taint pass over fixture modules."""
    if isinstance(sources, str):
        sources = {"repro.net.fixture": sources}
    sources = {m: textwrap.dedent(s) for m, s in sources.items()}
    return analyze_sources(sources, config=config, taint=True)


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


def _contexts(sources):
    return [ModuleContext.build(Path(f"{m}.py"), f"{m}.py", m,
                                textwrap.dedent(s))
            for m, s in sources.items()]


ALIAS_LEAK = """
def show(session_key):
    alias = session_key
    print(alias)
"""

FLOCK_VAULT = """
session_key = b"\\x00" * 32

def get_session_key():
    return session_key

def get_session_tag(message):
    return hmac_digest(session_key, message)
"""

NET_CLIENT = """
from repro.flock import vault

def fetch():
    raw = vault.get_session_key()
    return raw
"""

CORE_VAULT = """
def fetch_device_key():
    device_key = load()
    return device_key
"""

NET_SHOW = """
from repro.core import vault

def show():
    material = vault.fetch_device_key()
    print(material)
"""

EQ_HELPER = """
def equal(a, b):
    return a == b
"""


class TestSF110:
    def test_alias_reaching_print_is_flagged(self):
        findings = taint_lint(ALIAS_LEAK)
        hits = by_rule(findings, "SF110")
        assert len(hits) == 1
        assert "session_key" in hits[0].message
        assert "SF101" not in rule_ids(findings)

    def test_cross_module_return_flow_is_flagged(self):
        findings = taint_lint({"repro.core.vault": CORE_VAULT,
                               "repro.net.viewer": NET_SHOW})
        hits = by_rule(findings, "SF110")
        assert len(hits) == 1
        assert hits[0].module == "repro.net.viewer"
        assert "device_key" in hits[0].message
        # The trace spans both files: source in the vault, sink here.
        paths = {hop.path for hop in hits[0].trace}
        assert "repro.core.vault.py" in paths
        assert "repro.net.viewer.py" in paths

    def test_tuple_and_container_hops_are_followed(self):
        findings = taint_lint("""
            def pack(session_key):
                pair = (session_key, 1)
                k, _count = pair
                print(k)
        """)
        assert by_rule(findings, "SF110")

    def test_fstring_hop_is_followed(self):
        findings = taint_lint("""
            def show(device_template):
                label = f"template={device_template!r}"
                print(label)
        """)
        assert by_rule(findings, "SF110")

    def test_reassignment_clears_the_alias(self):
        findings = taint_lint("""
            def show(session_key):
                alias = session_key
                alias = "redacted"
                print(alias)
        """)
        assert by_rule(findings, "SF110") == []

    def test_trusted_layer_is_exempt(self):
        findings = taint_lint({"repro.flock.debug": ALIAS_LEAK})
        assert by_rule(findings, "SF110") == []

    def test_sanitized_value_is_clean(self):
        findings = taint_lint("""
            def show(session_key):
                fingerprint_hex = sha256_hex(session_key)
                print(fingerprint_hex)
        """)
        assert by_rule(findings, "SF110") == []

    def test_inline_suppression_applies(self):
        findings = taint_lint("""
            def show(session_key):
                alias = session_key
                print(alias)  # trust-lint: disable=SF110
        """)
        assert by_rule(findings, "SF110") == []


class TestSF101BlindSpotRetired:
    """The aliasing blind spot documented on SF101 is now covered.

    The same snippet, side by side: the syntactic rule cannot see
    through ``alias = session_key`` (by design — it has no dataflow),
    and the taint pass can.
    """

    def test_sf101_misses_the_alias(self):
        findings = analyze_source(textwrap.dedent(ALIAS_LEAK),
                                  module="repro.net.fixture")
        assert "SF101" not in rule_ids(findings)

    def test_sf110_catches_the_alias(self):
        hits = by_rule(taint_lint(ALIAS_LEAK), "SF110")
        assert len(hits) == 1


class TestSF111:
    def test_raw_secret_export_is_flagged(self):
        findings = taint_lint({"repro.flock.vault": FLOCK_VAULT,
                               "repro.net.client": NET_CLIENT})
        hits = by_rule(findings, "SF111")
        assert len(hits) == 1
        assert hits[0].module == "repro.net.client"
        assert "get_session_key" in hits[0].message
        assert any("trust boundary" in hop.note for hop in hits[0].trace)

    def test_wrapped_export_is_clean(self):
        findings = taint_lint({
            "repro.flock.vault": FLOCK_VAULT,
            "repro.net.client": """
                from repro.flock import vault

                def fetch(message):
                    tag = vault.get_session_tag(message)
                    return tag
            """,
        })
        assert by_rule(findings, "SF111") == []

    def test_trusted_consumer_is_exempt(self):
        findings = taint_lint({
            "repro.flock.vault": FLOCK_VAULT,
            "repro.crypto.consumer": """
                from repro.flock import vault

                def rewrap():
                    raw = vault.get_session_key()
                    return raw
            """,
        })
        assert by_rule(findings, "SF111") == []


class TestCD210Retirement:
    """CD210 is retired: its cases report as SC805 from the sc pass."""

    _HANDSHAKE = """
        from repro.net import util

        def handshake(session_key, candidate):
            return util.equal(session_key, candidate)
    """

    def test_taint_pass_no_longer_reports_compares(self):
        findings = taint_lint({"repro.net.util": EQ_HELPER,
                               "repro.net.session": self._HANDSHAKE})
        assert "CD210" not in rule_ids(findings)
        assert "SC805" not in rule_ids(findings)  # sc pass not requested

    def test_sc_pass_subsumes_the_interprocedural_compare(self):
        findings = analyze_sources(
            {"repro.net.util": textwrap.dedent(EQ_HELPER),
             "repro.net.session": textwrap.dedent(self._HANDSHAKE)},
            taint=True, sc=True)
        hits = by_rule(findings, "SC805")
        assert len(hits) == 1
        # Anchored at the fix site: the comparison inside the helper.
        assert hits[0].module == "repro.net.util"
        assert "constant_time_equal" in hits[0].message
        # CD202 (local + name-based) cannot see this one.
        assert "CD202" not in rule_ids(findings)

    def test_public_values_compare_freely(self):
        findings = analyze_sources(
            {"repro.net.util": textwrap.dedent(EQ_HELPER),
             "repro.net.session": textwrap.dedent("""
                 from repro.net import util

                 def handshake(domain, candidate):
                     return util.equal(domain, candidate)
             """)},
            taint=True, sc=True)
        assert by_rule(findings, "SC805") == []


class TestProjectIndex:
    def test_symbol_table_and_call_graph(self):
        contexts = _contexts({"repro.flock.vault": FLOCK_VAULT,
                              "repro.net.client": NET_CLIENT})
        _, analysis = run_taint(contexts, AnalysisConfig.default())
        assert "repro.flock.vault.get_session_key" in analysis.index.functions
        assert "repro.net.client.fetch" in analysis.index.functions
        assert ("repro.flock.vault.get_session_key"
                in analysis.call_edges["repro.net.client.fetch"])

    def test_method_resolution_through_self(self):
        contexts = _contexts({"repro.net.holder": """
            class Holder:
                def __init__(self, session_key):
                    self._raw = session_key

                def dump(self):
                    print(self._raw)
        """})
        findings, analysis = run_taint(contexts, AnalysisConfig.default())
        assert "repro.net.holder.Holder.dump" in analysis.index.functions
        assert [f.rule for f in findings] == ["SF110"]


class TestTraces:
    def test_every_finding_carries_a_full_trace(self):
        findings = taint_lint({"repro.flock.vault": FLOCK_VAULT,
                               "repro.net.client": NET_CLIENT,
                               "repro.net.alias": ALIAS_LEAK})
        taint_findings = [f for f in findings
                          if f.rule in ("SF110", "SF111")]
        assert taint_findings
        for finding in taint_findings:
            assert finding.trace, f"{finding.rule} finding without a trace"
            for hop in finding.trace:
                assert hop.path
                assert hop.line >= 1
                assert hop.note
