"""Shared helpers for the TRUST-lint test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import AnalysisConfig, analyze_source


@pytest.fixture
def lint():
    """Run the full rule set over a dedented snippet; returns findings."""

    def _lint(source: str, module: str = "somepkg.somemod",
              config: AnalysisConfig | None = None, is_package: bool = False):
        return analyze_source(textwrap.dedent(source), module=module,
                              config=config, is_package=is_package)

    return _lint


def rule_ids(findings) -> list[str]:
    """The rule ids of a finding list, in report order."""
    return [f.rule for f in findings]
