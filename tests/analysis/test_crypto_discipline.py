"""CD201/CD202/CD203 — crypto discipline rule fixtures."""

from .conftest import rule_ids


class TestStdlibRandom:
    def test_import_random_in_crypto_is_flagged(self, lint):
        findings = lint("import random\n", module="repro.crypto.badmod")
        assert rule_ids(findings) == ["CD201"]

    def test_from_random_import_in_flock_is_flagged(self, lint):
        findings = lint("from random import randrange\n",
                        module="repro.flock.badmod")
        assert rule_ids(findings) == ["CD201"]

    def test_random_attribute_use_is_flagged(self, lint):
        findings = lint(
            "import random\n"
            "x = random.randrange(2, 100)\n",
            module="repro.crypto.badmod")
        # Both the import and the use site are reported.
        assert rule_ids(findings) == ["CD201", "CD201"]

    def test_numpy_random_is_not_stdlib_random(self, lint):
        # np.random drives the physics simulation; only the stdlib module
        # is banned.
        findings = lint(
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.uniform(0.0, 1.0)\n",
            module="repro.flock.goodmod")
        assert findings == []

    def test_random_outside_trusted_packages_is_allowed(self, lint):
        findings = lint("import random\n", module="repro.touchgen.goodmod")
        assert findings == []

    def test_inline_suppression(self, lint):
        findings = lint(
            "import random  # trust-lint: disable=CD201\n",
            module="repro.crypto.badmod")
        assert findings == []


class TestTimingUnsafeComparison:
    def test_eq_on_key_bytes_is_flagged(self, lint):
        findings = lint(
            "def check(expected_mac, session_key, stored_key):\n"
            "    return session_key == stored_key\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["CD202"]

    def test_neq_on_mac_is_flagged(self, lint):
        findings = lint(
            "def check(expected_mac, received_mac):\n"
            "    if expected_mac != received_mac:\n"
            "        return False\n"
            "    return True\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["CD202"]

    def test_comparison_against_literal_is_clean(self, lint):
        # Type-tag dispatch on a public constant, not a secret comparison.
        findings = lint('ok = tag == "b"\n', module="repro.net.goodmod")
        assert findings == []

    def test_public_key_comparison_is_clean(self, lint):
        findings = lint(
            "hijacked = bound_public_key == attacker.public_key\n",
            module="repro.attacks.goodmod")
        assert findings == []

    def test_key_bits_comparison_is_clean(self, lint):
        findings = lint("ok = key_bits == other_bits\n",
                        module="repro.crypto.goodmod")
        assert findings == []

    def test_constant_time_equal_is_the_fix(self, lint):
        findings = lint(
            "from repro.crypto import constant_time_equal\n"
            "def check(expected_mac, received_mac):\n"
            "    return constant_time_equal(expected_mac, received_mac)\n",
            module="repro.net.goodmod")
        assert findings == []


class TestWeakHash:
    def test_md5_import_outside_frame_path_is_flagged(self, lint):
        findings = lint("from repro.crypto import md5\n",
                        module="repro.net.badmod")
        assert rule_ids(findings) == ["CD203"]

    def test_hashlib_md5_attribute_is_flagged(self, lint):
        findings = lint(
            "import hashlib\n"
            "digest_value = hashlib.md5(b'x')\n",
            module="repro.core.badmod")
        assert rule_ids(findings) == ["CD203"]

    def test_display_module_may_use_md5(self, lint):
        findings = lint(
            "from repro.crypto import md5, sha256\n"
            "def hash_frame(data, algorithm):\n"
            '    return sha256(data) if algorithm == "sha256" else md5(data)\n',
            module="repro.flock.display")
        assert findings == []

    def test_sha256_is_always_clean(self, lint):
        findings = lint(
            "from repro.crypto import sha256\n"
            "digest_value = sha256(b'x')\n",
            module="repro.net.goodmod")
        assert findings == []
