"""Engine behaviour: file discovery, module naming, baselines, config."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze_paths,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import module_name_for


def _write_pkg(root: Path, dotted: str, name: str, source: str) -> Path:
    """Create a package chain ``dotted`` and drop ``name.py`` inside it."""
    current = root
    for part in dotted.split("."):
        current = current / part
        current.mkdir(exist_ok=True)
        (current / "__init__.py").touch()
    path = current / f"{name}.py"
    path.write_text(textwrap.dedent(source))
    return path


class TestModuleNaming:
    def test_nested_module(self, tmp_path):
        path = _write_pkg(tmp_path, "repro.net", "webserver", "x = 1\n")
        module, is_package = module_name_for(path)
        assert module == "repro.net.webserver"
        assert not is_package

    def test_package_init(self, tmp_path):
        _write_pkg(tmp_path, "repro.crypto", "rng", "x = 1\n")
        module, is_package = module_name_for(
            tmp_path / "repro" / "crypto" / "__init__.py")
        assert module == "repro.crypto"
        assert is_package

    def test_bare_script(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("x = 1\n")
        module, is_package = module_name_for(path)
        assert module == "script"
        assert not is_package


class TestAnalyzePaths:
    def test_violations_found_across_tree(self, tmp_path):
        _write_pkg(tmp_path, "repro.crypto", "badmod", "import random\n")
        _write_pkg(tmp_path, "repro.net", "leaky", "print(session_key)\n")
        report = analyze_paths([tmp_path])
        assert sorted(f.rule for f in report.findings) \
            == ["CD201", "OB501", "SF101"]
        assert report.files_scanned >= 2
        assert not report.clean

    def test_clean_tree(self, tmp_path):
        _write_pkg(tmp_path, "repro.net", "goodmod", "x = 1\n")
        report = analyze_paths([tmp_path])
        assert report.clean
        assert report.findings == []

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        _write_pkg(tmp_path, "repro.net", "broken", "def f(:\n")
        report = analyze_paths([tmp_path])
        assert not report.clean
        assert len(report.parse_errors) == 1

    def test_suppressed_findings_are_counted(self, tmp_path):
        _write_pkg(tmp_path, "repro.crypto", "badmod",
                   "import random  # trust-lint: disable=CD201\n")
        report = analyze_paths([tmp_path])
        assert report.clean
        assert report.suppressed_count == 1

    def test_disabled_rule_does_not_run(self, tmp_path):
        _write_pkg(tmp_path, "repro.crypto", "badmod", "import random\n")
        config = AnalysisConfig(disabled_rules=("CD201",))
        report = analyze_paths([tmp_path], config)
        assert report.clean


class TestBaseline:
    def test_baseline_grandfathers_existing_findings(self, tmp_path):
        _write_pkg(tmp_path, "repro.crypto", "badmod", "import random\n")
        first = analyze_paths([tmp_path])
        assert len(first.findings) == 1

        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)
        baseline = load_baseline(baseline_file)

        second = analyze_paths([tmp_path], baseline=baseline)
        assert second.clean
        assert second.baselined_count == 1

    def test_new_finding_not_covered_by_baseline(self, tmp_path):
        path = _write_pkg(tmp_path, "repro.crypto", "badmod",
                          "import random\n")
        first = analyze_paths([tmp_path])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)

        path.write_text("import random\nfrom random import randrange\n")
        report = analyze_paths([tmp_path],
                               baseline=load_baseline(baseline_file))
        assert len(report.findings) == 1  # only the new line
        assert report.baselined_count == 1

    def test_fingerprint_survives_line_motion(self, tmp_path):
        path = _write_pkg(tmp_path, "repro.crypto", "badmod",
                          "import random\n")
        first = analyze_paths([tmp_path])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)

        path.write_text("# a new leading comment\nimport random\n")
        report = analyze_paths([tmp_path],
                               baseline=load_baseline(baseline_file))
        assert report.clean
        assert report.baselined_count == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_bad_version_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_apply_baseline_respects_counts(self, tmp_path):
        _write_pkg(tmp_path, "repro.crypto", "badmod",
                   "import random\nimport random\n")
        report = analyze_paths([tmp_path])
        assert len(report.findings) == 2
        # Both findings share one fingerprint (same stripped line); a
        # baseline recording one occurrence forgives exactly one.
        fp = report.findings[0].fingerprint()
        new, grandfathered = apply_baseline(report.findings, {fp: 1})
        assert grandfathered == 1
        assert len(new) == 1


class TestConfig:
    def test_pyproject_overrides(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""
            [tool.trust-lint]
            paths = ["lib"]
            disable = ["RB302"]
            extend-public-patterns = ["monkey*"]
        """))
        config = AnalysisConfig.from_pyproject(pyproject)
        assert config.default_paths == ("lib",)
        assert not config.rule_enabled("RB302")
        assert not config.is_secret_name("monkeypatch")
        assert config.is_secret_name("session_key")

    def test_unknown_option_is_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.trust-lint]\ntypo-option = 1\n")
        with pytest.raises(ValueError, match="typo-option"):
            AnalysisConfig.from_pyproject(pyproject)

    def test_secret_name_matching(self):
        config = AnalysisConfig.default()
        assert config.is_secret_name("session_key")
        assert config.is_secret_name("device_template")
        assert config.is_secret_name("minutiae")
        assert config.is_secret_name("seed")
        assert not config.is_secret_name("public_key")
        assert not config.is_secret_name("keystroke_timings")
        assert not config.is_secret_name("domain")

    def test_secret_bytes_matching(self):
        config = AnalysisConfig.default()
        assert config.is_secret_bytes_name("session_key")
        assert config.is_secret_bytes_name("mac")
        assert config.is_secret_bytes_name("expected_tag")
        assert not config.is_secret_bytes_name("public_key")
        assert not config.is_secret_bytes_name("key_bits")


class TestWorkerRobustness:
    """A crashing rule or a dead worker pool must not abort the scan."""

    def test_rule_crash_surfaces_file_and_keeps_scanning(self, tmp_path,
                                                         monkeypatch):
        from repro.analysis.rules.crypto_discipline import StdlibRandomInCrypto

        _write_pkg(tmp_path, "repro.crypto", "crashy", "x = 1\n")
        _write_pkg(tmp_path, "repro.crypto", "noisy", "import random\n")

        original = StdlibRandomInCrypto.check

        def exploding(self, ctx, config):
            if ctx.module.endswith("crashy"):
                raise RuntimeError("rule exploded")
            yield from original(self, ctx, config)

        monkeypatch.setattr(StdlibRandomInCrypto, "check", exploding)
        report = analyze_paths([tmp_path], jobs=1)
        # The crash is attributed to the file it died on...
        (crashed,) = [(display, message)
                      for display, message in report.parse_errors
                      if "crashy" in display]
        assert "rule crash: RuntimeError: rule exploded" in crashed[1]
        # ...and the other file was still scanned normally.
        assert any(f.rule == "CD201" and "noisy" in f.path
                   for f in report.findings)

    def test_rule_crash_is_a_failing_exit_code(self, tmp_path, monkeypatch):
        from repro.analysis.cli import _exit_code
        from repro.analysis.rules.crypto_discipline import StdlibRandomInCrypto

        _write_pkg(tmp_path, "repro.crypto", "crashy", "x = 1\n")

        def exploding(self, ctx, config):
            raise RuntimeError("boom")
            yield  # pragma: no cover

        monkeypatch.setattr(StdlibRandomInCrypto, "check", exploding)
        report = analyze_paths([tmp_path], jobs=1)
        assert report.parse_errors
        # Even the laxest threshold cannot mask a crashed worker.
        assert _exit_code(report, "error") == 1

    def test_broken_pool_falls_back_to_sequential(self, tmp_path,
                                                  monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.analysis import engine

        _write_pkg(tmp_path, "repro.crypto", "badmod", "import random\n")

        class DyingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, payloads, chunksize=1):
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", DyingPool)
        report = analyze_paths([tmp_path], jobs=2)
        assert not report.parse_errors
        assert any(f.rule == "CD201" for f in report.findings)
