"""SF101 — secret-flow hygiene rule fixtures.

Fixtures that exercise the ``print()`` sink use a ``cli`` module
basename so OB501 (no print in library code) stays out of the way;
the SF rules key off the *package*, not the basename, so their
behavior is identical.
"""

from .conftest import rule_ids


class TestSecretSinks:
    def test_secret_printed_is_flagged(self, lint):
        findings = lint("print(session_key)\n", module="repro.net.cli")
        assert rule_ids(findings) == ["SF101"]
        assert "session_key" in findings[0].message

    def test_secret_in_fstring_to_print_is_flagged(self, lint):
        findings = lint('print(f"template bytes: {template}")\n',
                        module="repro.net.cli")
        assert rule_ids(findings) == ["SF101"]

    def test_secret_logged_is_flagged(self, lint):
        findings = lint(
            "import logging\n"
            "logger = logging.getLogger(__name__)\n"
            "def f(device_seed):\n"
            "    logger.info(device_seed)\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["SF101"]

    def test_secret_in_exception_message_is_flagged(self, lint):
        findings = lint(
            "def f(minutiae):\n"
            '    raise ValueError(f"bad capture: {minutiae}")\n',
            module="repro.net.badmod")
        assert rule_ids(findings) == ["SF101"]

    def test_secret_in_repr_is_flagged(self, lint):
        findings = lint(
            "class Record:\n"
            "    def __repr__(self):\n"
            '        return f"Record({self.private_key})"\n',
            module="repro.net.badmod")
        assert rule_ids(findings) == ["SF101"]

    def test_secret_returned_from_str_is_flagged(self, lint):
        findings = lint(
            "class Record:\n"
            "    def __str__(self):\n"
            "        return self.password\n",
            module="repro.net.badmod")
        assert rule_ids(findings) == ["SF101"]


class TestSecretNegatives:
    def test_public_key_is_not_secret(self, lint):
        findings = lint('print(f"bound {public_key}")\n',
                        module="repro.net.cli")
        assert findings == []

    def test_derived_count_is_not_flagged(self, lint):
        # len(minutiae) prints a count, not the minutiae themselves.
        findings = lint('print(f"{len(minutiae)} minutiae found")\n',
                        module="repro.net.cli")
        assert findings == []

    def test_plain_fstring_outside_sinks_is_clean(self, lint):
        # f-strings are only sinks in reprs and exception messages.
        findings = lint('label = f"run-{seed}"\n', module="repro.eval.goodmod")
        assert findings == []

    def test_trusted_layer_is_exempt(self, lint):
        findings = lint("print(session_key)\n", module="repro.flock.cli")
        assert findings == []

    def test_keystroke_features_are_not_secrets(self, lint):
        findings = lint("print(keystroke_timings)\n",
                        module="repro.baselines.cli")
        assert findings == []


class TestSecretSuppression:
    def test_inline_suppression(self, lint):
        findings = lint(
            "print(session_key)  # trust-lint: disable=SF101\n",
            module="repro.net.cli")
        assert findings == []

    def test_suppressing_other_rule_does_not_hide(self, lint):
        findings = lint(
            "print(session_key)  # trust-lint: disable=TB001\n",
            module="repro.net.cli")
        assert rule_ids(findings) == ["SF101"]
