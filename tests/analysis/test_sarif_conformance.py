"""SARIF 2.1.0 structural conformance across all six assurance stages.

One parametrized test drives each stage — lint, taint, det, verify,
contract, sc — to a non-empty finding set through its real entry point, then
asserts the rendered SARIF satisfies the structural subset code-scanning
UIs rely on: schema/version header, a single run, a driver whose rule
metadata covers every reported ``ruleId``, one-based regions on every
location, stable ``partialFingerprints``, and well-formed ``codeFlows``
when a stage attaches traces.
"""

from __future__ import annotations

import json
import textwrap
from dataclasses import replace

import pytest

from repro.analysis import AnalysisConfig
from repro.analysis.engine import AnalysisReport, analyze_sources
from repro.analysis.reporters import render_sarif

LINT_FIXTURE = {
    # CD201: stdlib ``random`` imported inside the crypto substrate.
    "repro.crypto.fixture": """
        import random

        def jitter():
            return random.random()
    """,
}

TAINT_FIXTURE = {
    # SF110: a secret flows through an alias into a print sink.
    "repro.net.fixture": """
        def leak(session_key):
            alias = session_key
            print(alias)
    """,
}

SC_FIXTURE = {
    # SC800: control flow forks on a secret inside the crypto package.
    "repro.crypto.fixture": """
        def route(session_key):
            if session_key:
                return 1
            return 0
    """,
}

DET_FIXTURE = {
    # DT601: wall-clock read inside the runtime package.
    "repro.runtime.fixture": """
        import time

        def stamp(event):
            return (time.time(), event)
    """,
}

CONTRACT_FIXTURE = {
    "fix.codec": """
        PROTOCOL_VERSION = 1
        SUPPORTED_PROTOCOL_VERSIONS = frozenset({1})
        MSG_PING = "ping"

        class Envelope:
            def __init__(self, msg_type, fields):
                self.msg_type = msg_type
                self.fields = dict(fields)

            def set_mac(self, tag):
                self.fields["mac"] = tag
                return self

            def require(self, *names):
                return self
    """,
    "fix.server": """
        from fix.codec import MSG_PING, Envelope

        ENDPOINTS = {}

        def _endpoint(registry, msg_type, summary):
            def wrap(func):
                registry[msg_type] = func.__name__
                return func
            return wrap

        class Server:
            @_endpoint(ENDPOINTS, MSG_PING, "answer one ping")
            def _serve_ping(self, envelope):
                envelope.require("blob", "mac")
                return Envelope(MSG_PING, {"blob": b""}).set_mac(b"t")
    """,
    # No client module sends MSG_PING -> CT700.
    "fix.client": """
        def idle():
            return None
    """,
}


def _contract_config() -> AnalysisConfig:
    return replace(
        AnalysisConfig.default(),
        contract_server_modules=("fix.server",),
        contract_codec_modules=("fix.codec",),
        contract_client_modules=("fix.client",),
        contract_read_modules=("fix.client",),
        contract_consumer_paths=(),
        contract_golden="",
    )


def _fixture_report(sources, **passes) -> AnalysisReport:
    sources = {m: textwrap.dedent(s) for m, s in sources.items()}
    config = passes.pop("config", None)
    findings = analyze_sources(sources, config=config, **passes)
    return AnalysisReport(findings=findings)


def _verify_report() -> AnalysisReport:
    from repro.analysis.verify import run_verify
    findings, stats = run_verify(depth=6, entries=("login",),
                                 mutations=("skip-login-signature-check",))
    return AnalysisReport(findings=findings, verify_stats=stats)


STAGES = {
    "lint": lambda: _fixture_report(LINT_FIXTURE),
    "taint": lambda: _fixture_report(TAINT_FIXTURE, taint=True),
    "det": lambda: _fixture_report(DET_FIXTURE, det=True),
    "verify": _verify_report,
    "contract": lambda: _fixture_report(CONTRACT_FIXTURE, contract=True,
                                        config=_contract_config()),
    "sc": lambda: _fixture_report(SC_FIXTURE, sc=True),
}

EXPECTED_RULE_PREFIX = {"lint": "CD", "taint": "SF", "det": "DT",
                        "verify": "PV", "contract": "CT", "sc": "SC"}


@pytest.mark.parametrize("stage", sorted(STAGES))
def test_sarif_is_structurally_conformant(stage):
    report = STAGES[stage]()
    assert report.findings, f"{stage} fixture produced no findings"
    assert any(f.rule.startswith(EXPECTED_RULE_PREFIX[stage])
               for f in report.findings)

    sarif = json.loads(render_sarif(report))
    assert sarif["version"] == "2.1.0"
    assert sarif["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(sarif["runs"]) == 1

    run = sarif["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_index = {rule["id"]: rule for rule in driver["rules"]}
    assert all("shortDescription" in rule for rule in driver["rules"])

    assert run["results"], "a non-empty report must render results"
    for result in run["results"]:
        assert result["ruleId"] in rule_index
        assert result["level"] in ("error", "warning", "note")
        assert result["message"]["text"]
        assert len(result["locations"]) >= 1
        for location in result["locations"]:
            region = location["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            assert location["physicalLocation"]["artifactLocation"]["uri"]
        fingerprint = result["partialFingerprints"]["trustLint/v1"]
        assert len(fingerprint) == 16
        for flow in result.get("codeFlows", ()):
            locations = flow["threadFlows"][0]["locations"]
            assert locations
            for hop in locations:
                hop_region = hop["location"]["physicalLocation"]["region"]
                assert hop_region["startLine"] >= 1


def test_verify_stats_land_in_run_properties():
    report = _verify_report()
    run = json.loads(render_sarif(report))["runs"][0]
    assert run["properties"]["verify"]


def test_rendering_is_deterministic():
    report = _fixture_report(CONTRACT_FIXTURE, contract=True,
                             config=_contract_config())
    assert render_sarif(report) == render_sarif(report)
