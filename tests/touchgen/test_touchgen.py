"""Layouts, user models, gestures, sessions, density maps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.touchgen import (
    GestureKind,
    SessionConfig,
    SessionGenerator,
    UiElement,
    UiLayout,
    UserTouchModel,
    density_map,
    example_users,
    make_swipe,
    make_tap,
    make_zoom,
    standard_layouts,
)


class TestLayouts:
    def test_standard_layouts_present(self):
        layouts = standard_layouts()
        assert set(layouts) == {"keyboard", "launcher", "browser",
                                "bank-app", "unlock"}

    def test_elements_inside_layout(self):
        for layout in standard_layouts().values():
            for element in layout.elements:
                assert element.x_mm >= 0 and element.y_mm >= 0
                assert element.x_mm + element.width_mm <= layout.width_mm + 1e-9
                assert element.y_mm + element.height_mm <= layout.height_mm + 1e-9

    def test_bank_app_has_critical_buttons(self):
        bank = standard_layouts()["bank-app"]
        assert any(e.critical for e in bank.elements)

    def test_element_lookup(self):
        browser = standard_layouts()["browser"]
        assert browser.element("back").name == "back"
        with pytest.raises(KeyError):
            browser.element("missing")

    def test_element_contains(self):
        element = UiElement("e", 10, 10, 5, 5)
        assert element.contains(12, 12)
        assert not element.contains(16, 12)

    def test_sample_respects_weights(self):
        layout = UiLayout("l", 50, 50, (
            UiElement("heavy", 0, 0, 10, 10, weight=100.0),
            UiElement("light", 20, 20, 10, 10, weight=0.01),
        ))
        rng = np.random.default_rng(0)
        names = [layout.sample_element(rng).name for _ in range(50)]
        assert names.count("heavy") >= 45

    def test_invalid_element(self):
        with pytest.raises(ValueError):
            UiElement("bad", 0, 0, 0, 5)
        with pytest.raises(ValueError):
            UiElement("bad", 0, 0, 5, 5, weight=-1)

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            UiLayout("empty", 50, 50, ())
        with pytest.raises(ValueError):
            UiLayout("escapes", 50, 50, (UiElement("e", 45, 0, 10, 5),))


class TestUserModel:
    def test_example_users_distinct(self):
        users = example_users()
        assert len({u.user_id for u in users}) == 3
        assert len({u.finger_id for u in users}) == 3

    def test_positions_inside_panel(self):
        layout = standard_layouts()["browser"]
        user = example_users()[0]
        rng = np.random.default_rng(0)
        for _ in range(100):
            x, y, _ = user.sample_position(layout, rng)
            assert 0 <= x <= layout.width_mm
            assert 0 <= y <= layout.height_mm

    def test_dynamics_ranges(self):
        user = example_users()[1]
        rng = np.random.default_rng(0)
        for _ in range(100):
            pressure, speed, duration = user.sample_dynamics(rng)
            assert 0.05 <= pressure <= 0.95
            assert speed >= 0 and duration >= 0.02

    def test_handedness_validation(self):
        with pytest.raises(ValueError):
            UserTouchModel("u", "f", handedness="ambidextrous")

    def test_hotspot_draws_happen(self):
        user = UserTouchModel("u", "f",
                              extra_hotspots=[(30.0, 50.0, 1000.0)])
        layout = standard_layouts()["browser"]
        rng = np.random.default_rng(1)
        hits = sum(
            1 for _ in range(60)
            if user.sample_position(layout, rng)[2] is None
        )
        assert hits >= 55  # hotspot weight dominates UI weight


class TestGestures:
    def test_tap_single_event(self):
        tap = make_tap(1.0, 10, 20, 0.5, 0.1, "f")
        assert tap.kind is GestureKind.TAP
        assert len(tap.events) == 1
        assert not tap.changes_view
        assert tap.end_s == pytest.approx(1.1)

    def test_swipe_samples_and_speed(self):
        swipe = make_swipe(0.0, (10, 80), (10, 40), duration_s=0.2,
                           pressure=0.5, finger_id="f")
        assert swipe.kind is GestureKind.SWIPE
        assert len(swipe.events) == 50  # 0.2 s at 4 ms
        assert swipe.changes_view
        assert swipe.events[0].speed_mm_s == pytest.approx(200.0)  # 40mm/0.2s

    def test_swipe_clipped_to_panel(self):
        swipe = make_swipe(0.0, (5, 5), (-20, -20), duration_s=0.2,
                           pressure=0.5, finger_id="f")
        for event in swipe.events:
            assert event.x_mm >= 0 and event.y_mm >= 0

    def test_zoom_two_contacts_per_sample(self):
        zoom = make_zoom(0.0, (28, 47), 10, 30, duration_s=0.4,
                         pressure=0.5, finger_id="f")
        assert zoom.kind is GestureKind.ZOOM
        assert len(zoom.events) % 2 == 0
        assert zoom.changes_view

    def test_gesture_validation(self):
        with pytest.raises(ValueError):
            make_swipe(0, (0, 0), (1, 1), duration_s=0, pressure=0.5,
                       finger_id="f")
        with pytest.raises(ValueError):
            make_zoom(0, (10, 10), 0, 10, duration_s=0.2, pressure=0.5,
                      finger_id="f")

    def test_primary_event_is_first(self):
        swipe = make_swipe(3.0, (10, 80), (10, 40), duration_s=0.2,
                           pressure=0.5, finger_id="f")
        assert swipe.primary_event.time_s == pytest.approx(3.0)


class TestSessions:
    @pytest.fixture(scope="class")
    def trace(self):
        generator = SessionGenerator(example_users()[0])
        return generator.generate(SessionConfig(n_interactions=150), seed=3)

    def test_interaction_count(self, trace):
        assert trace.n_touches == 150
        assert len(trace.layout_names) == 150

    def test_time_is_monotone(self, trace):
        starts = [g.start_s for g in trace.gestures]
        assert all(b > a for a, b in zip(starts, starts[1:]))

    def test_gesture_mix_roughly_matches_config(self, trace):
        kinds = [g.kind for g in trace.gestures]
        tap_fraction = kinds.count(GestureKind.TAP) / len(kinds)
        assert 0.6 < tap_fraction < 0.9

    def test_deterministic(self):
        generator = SessionGenerator(example_users()[1])
        a = generator.generate(SessionConfig(n_interactions=30), seed=11)
        b = generator.generate(SessionConfig(n_interactions=30), seed=11)
        assert a.primary_points().tolist() == b.primary_points().tolist()

    def test_unknown_layout_rejected(self):
        generator = SessionGenerator(example_users()[0])
        config = SessionConfig(layout_mix=(("nonexistent", 1.0),))
        with pytest.raises(KeyError):
            generator.generate(config, seed=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(n_interactions=0)
        with pytest.raises(ValueError):
            SessionConfig(tap_fraction=0.9, swipe_fraction=0.5)

    def test_taps_only_filter(self, trace):
        taps = trace.taps_only()
        assert all(t.kind is GestureKind.TAP for t in taps)
        assert 0 < len(taps) <= trace.n_touches


class TestDensityMap:
    def test_normalized(self):
        points = np.array([[10.0, 10.0], [30.0, 50.0], [30.0, 51.0]])
        grid = density_map(points, 56, 94)
        assert grid.sum() == pytest.approx(1.0)
        assert grid.shape == (47, 28)

    def test_empty_points(self):
        grid = density_map(np.zeros((0, 2)), 56, 94)
        assert grid.sum() == 0.0

    def test_peak_at_cluster(self):
        points = np.tile([[28.0, 47.0]], (100, 1))
        grid = density_map(points, 56, 94, smooth=False)
        peak = np.unravel_index(np.argmax(grid), grid.shape)
        assert abs(peak[0] - 23) <= 1 and abs(peak[1] - 14) <= 1

    def test_fig7_shape_users_are_peaked_and_overlapping(self):
        """The core Fig. 7 observation: hot-spots exist and overlap."""
        grids = []
        for user in example_users():
            generator = SessionGenerator(user)
            trace = generator.generate(SessionConfig(n_interactions=250),
                                       seed=17)
            grids.append(density_map(trace.primary_points(), 56, 94))
        uniform = 1.0 / grids[0].size
        for grid in grids:
            assert grid.max() > 8 * uniform  # strongly peaked
        # Overlap: the product of top-density regions is non-empty for at
        # least one user pair.
        tops = [grid > 3 * uniform for grid in grids]
        overlaps = [
            (tops[i] & tops[j]).sum()
            for i in range(3) for j in range(i + 1, 3)
        ]
        assert max(overlaps) > 0

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_any_point_count_normalizes(self, n):
        rng = np.random.default_rng(n)
        points = rng.uniform([0, 0], [56, 94], size=(n, 2))
        assert density_map(points, 56, 94).sum() == pytest.approx(1.0)
