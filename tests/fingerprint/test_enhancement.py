"""Contextual Gabor enhancement and its integration in the processor."""

import numpy as np
import pytest

from repro.fingerprint import (
    CaptureCondition,
    MinutiaeMatcher,
    enhance,
    enroll_master,
    minutiae_from_image,
    minutiae_with_enhancement,
    render_impression,
    synthesize_master,
)
from repro.flock import ImageFingerprintProcessor


@pytest.fixture(scope="module")
def master():
    return synthesize_master("enh-f", np.random.default_rng(3))


@pytest.fixture(scope="module")
def template(master):
    return enroll_master(master, np.random.default_rng(4))


def _noisy_probe(master, rng):
    condition = CaptureCondition(
        center=(float(rng.uniform(70, 120)), float(rng.uniform(70, 120))),
        radius=70.0, rotation_deg=float(rng.uniform(-15, 15)),
        noise=0.15, dropout=0.10, pressure=0.3)
    return render_impression(master, condition, rng)


class TestEnhance:
    def test_output_ranges(self, master):
        rng = np.random.default_rng(0)
        probe = _noisy_probe(master, rng)
        result = enhance(probe.image, probe.mask)
        assert result.image.shape == probe.image.shape
        assert (result.image >= 0).all() and (result.image <= 1).all()
        assert result.mask.dtype == bool

    def test_background_stays_neutral(self, master):
        rng = np.random.default_rng(1)
        probe = _noisy_probe(master, rng)
        result = enhance(probe.image, probe.mask)
        assert np.allclose(result.image[~probe.mask], 0.5)

    def test_flat_image_is_neutral(self):
        result = enhance(np.full((64, 64), 0.5))
        assert np.allclose(result.image, 0.5)

    def test_enhancement_recovers_noisy_genuine_scores(self, master,
                                                       template):
        rng = np.random.default_rng(5)
        matcher = MinutiaeMatcher()
        raw_scores, enhanced_scores = [], []
        for _ in range(6):
            probe = _noisy_probe(master, rng)
            raw = minutiae_from_image(probe.image, probe.mask)
            enhanced = minutiae_with_enhancement(probe.image, probe.mask)
            raw_scores.append(matcher.match(template.minutiae, raw).score)
            enhanced_scores.append(
                matcher.match(template.minutiae, enhanced).score)
        assert np.mean(enhanced_scores) > np.mean(raw_scores) + 0.05

    def test_enhancement_does_not_create_impostor_matches(self, template):
        impostor = synthesize_master("enh-imp", np.random.default_rng(77))
        rng = np.random.default_rng(6)
        matcher = MinutiaeMatcher()
        scores = []
        for _ in range(6):
            probe = _noisy_probe(impostor, rng)
            enhanced = minutiae_with_enhancement(probe.image, probe.mask)
            scores.append(matcher.match(template.minutiae, enhanced).score)
        assert max(scores) < 0.16  # below the enhanced-pass threshold


class TestProcessorIntegration:
    def test_enhanced_threshold_validation(self, template):
        with pytest.raises(ValueError, match="enhanced-pass threshold"):
            ImageFingerprintProcessor(template, accept_threshold=0.2,
                                      enhanced_threshold=0.1)

    def test_enhancement_can_be_disabled(self, template):
        processor = ImageFingerprintProcessor(template,
                                              use_enhancement=False)
        assert not processor.use_enhancement
        assert processor.enhancement_passes == 0

    def test_enhancement_pass_counter_increments(self, master, template):
        """Touches that fail the raw pass trigger the enhancement pass."""
        from repro.net import MobileDevice
        device = MobileDevice("enh-dev", b"enh-seed")
        device.flock.enroll_local_user(template)
        rng = np.random.default_rng(7)
        impostor = synthesize_master("enh-imp2", np.random.default_rng(88))
        for i in range(6):
            device.touch_at(28.0, 80.0, float(i), impostor, rng)
        processor = device.flock._local_processor
        assert processor.enhancement_passes > 0
