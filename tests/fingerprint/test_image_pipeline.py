"""image_ops, orientation, gabor, thinning: the low-level image pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fingerprint import (
    FingerprintClass,
    GaborBank,
    SyntheticOrientationField,
    binarize,
    block_view_stats,
    estimate_orientation,
    gabor_kernel,
    local_contrast,
    normalize,
    orientation_coherence,
    segment_foreground,
    zhang_suen_thin,
)


def _stripes(shape=(96, 96), period=8.0, angle=0.0):
    """Synthetic parallel ridges at a given ridge *direction* angle."""
    rr, cc = np.meshgrid(np.arange(shape[0]), np.arange(shape[1]), indexing="ij")
    # Oscillation perpendicular to the ridge direction.
    v = -cc * np.sin(angle) + rr * np.cos(angle)
    return 0.5 + 0.5 * np.cos(2 * np.pi * v / period)


class TestNormalize:
    def test_targets_reached(self):
        rng = np.random.default_rng(0)
        img = rng.random((50, 50)) * 0.2 + 0.7
        out = normalize(img)
        assert abs(out.mean() - 0.5) < 0.05
        assert 0.0 <= out.min() and out.max() <= 1.0

    def test_flat_image(self):
        out = normalize(np.full((10, 10), 0.3))
        assert np.allclose(out, 0.5)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_output_in_unit_range(self, seed):
        img = np.random.default_rng(seed).random((20, 20))
        out = normalize(img)
        assert (out >= 0).all() and (out <= 1).all()


class TestSegmentation:
    def test_stripes_are_foreground(self):
        img = np.full((96, 96), 0.5)
        img[20:70, 20:70] = _stripes()[20:70, 20:70]
        mask = segment_foreground(img)
        assert mask[40, 40]
        assert not mask[5, 5]

    def test_blank_image_has_no_foreground(self):
        assert not segment_foreground(np.full((64, 64), 0.5)).any()

    def test_largest_component_kept(self):
        img = np.full((96, 96), 0.5)
        img[10:80, 10:60] = _stripes()[10:80, 10:60]  # big blob
        img[88:92, 88:92] = 0.0  # tiny speck
        mask = segment_foreground(img)
        assert mask[40, 30]
        assert not mask[90, 90]


class TestBlockStats:
    def test_shapes(self):
        mean, var = block_view_stats(np.zeros((48, 36)), block=12)
        assert mean.shape == (4, 3) and var.shape == (4, 3)

    def test_constant_blocks(self):
        img = np.kron(np.array([[0.0, 1.0], [1.0, 0.0]]), np.ones((12, 12)))
        mean, var = block_view_stats(img, block=12)
        assert np.allclose(var, 0.0)
        assert np.allclose(mean, [[0, 1], [1, 0]])


class TestBinarize:
    def test_stripes_binarize_to_half_density(self):
        ridges = binarize(_stripes())
        assert 0.35 < ridges.mean() < 0.65

    def test_mask_respected(self):
        mask = np.zeros((96, 96), dtype=bool)
        mask[:48] = True
        ridges = binarize(_stripes(), mask=mask)
        assert not ridges[48:].any()


class TestOrientationEstimation:
    @pytest.mark.parametrize("angle", [0.0, np.pi / 6, np.pi / 4, np.pi / 2, 2.2])
    def test_recovers_stripe_direction(self, angle):
        img = _stripes(angle=angle)
        est = estimate_orientation(img)
        # Compare in doubled-angle space (pi-periodic), central region only.
        target = angle % np.pi
        central = est[30:66, 30:66]
        err = np.abs(np.mod(central - target + np.pi / 2, np.pi) - np.pi / 2)
        assert np.median(err) < 0.1

    def test_coherence_high_on_stripes_low_on_noise(self):
        stripes = _stripes()
        noise = np.random.default_rng(3).random((96, 96))
        coh_stripes = orientation_coherence(stripes)[30:66, 30:66].mean()
        coh_noise = orientation_coherence(noise)[30:66, 30:66].mean()
        assert coh_stripes > 0.8
        assert coh_noise < coh_stripes - 0.3


class TestSyntheticField:
    def test_field_range(self):
        rng = np.random.default_rng(0)
        field = SyntheticOrientationField(FingerprintClass.whorl(), (64, 64), rng)
        assert field.field.shape == (64, 64)
        assert (field.field >= 0).all() and (field.field < np.pi).all()

    def test_perturbation_changes_field(self):
        base = SyntheticOrientationField(
            FingerprintClass.left_loop(), (64, 64),
            np.random.default_rng(1), perturbation=0.0)
        noisy = SyntheticOrientationField(
            FingerprintClass.left_loop(), (64, 64),
            np.random.default_rng(1), perturbation=0.3)
        assert not np.allclose(base.field, noisy.field)

    def test_all_classes_distinct_fields(self):
        rng = lambda: np.random.default_rng(5)  # noqa: E731
        fields = [
            SyntheticOrientationField(c, (64, 64), rng(), perturbation=0.0).field
            for c in FingerprintClass.all_classes()
        ]
        for i in range(len(fields)):
            for j in range(i + 1, len(fields)):
                assert not np.allclose(fields[i], fields[j])

    def test_sample_clamps(self):
        field = SyntheticOrientationField(
            FingerprintClass.arch(), (32, 32), np.random.default_rng(0))
        assert field.sample(-5.0, 100.0) == field.field[0, 31]

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            SyntheticOrientationField(
                FingerprintClass.arch(), (4, 4), np.random.default_rng(0))


class TestGabor:
    def test_kernel_zero_dc(self):
        kernel = gabor_kernel(0.7, 9.0)
        assert abs(kernel.mean()) < 1e-12

    def test_kernel_symmetry(self):
        kernel = gabor_kernel(0.0, 9.0)
        assert np.allclose(kernel, kernel[::-1, ::-1])

    def test_kernel_rejects_tiny_wavelength(self):
        with pytest.raises(ValueError):
            gabor_kernel(0.0, 1.5)

    def test_bank_strongest_response_at_matching_orientation(self):
        bank = GaborBank(8.0, n_orientations=8)
        img = _stripes(period=8.0, angle=0.0) - 0.5
        responses = []
        for angle in bank.angles:
            field = np.full(img.shape, angle)
            responses.append(np.abs(bank.filter(img, field))[30:66, 30:66].mean())
        assert int(np.argmax(responses)) == 0

    def test_bank_needs_four_orientations(self):
        with pytest.raises(ValueError):
            GaborBank(9.0, n_orientations=3)

    def test_filter_shape_mismatch(self):
        bank = GaborBank(9.0)
        with pytest.raises(ValueError):
            bank.filter(np.zeros((10, 10)), np.zeros((12, 12)))

    def test_synthesize_rejects_flat_seed(self):
        bank = GaborBank(9.0)
        with pytest.raises(ValueError):
            bank.synthesize(np.zeros((48, 48)), np.zeros((48, 48)))

    def test_synthesize_produces_stripes(self):
        rng = np.random.default_rng(2)
        bank = GaborBank(9.0)
        field = np.full((96, 96), 0.3)
        seed = rng.standard_normal((96, 96)) * 0.1
        out = bank.synthesize(seed, field, iterations=5)
        assert (out >= 0).all() and (out <= 1).all()
        est = estimate_orientation(out)[30:66, 30:66]
        err = np.abs(np.mod(est - 0.3 + np.pi / 2, np.pi) - np.pi / 2)
        assert np.median(err) < 0.25


class TestThinning:
    def test_requires_boolean(self):
        with pytest.raises(ValueError):
            zhang_suen_thin(np.zeros((10, 10)))

    def test_thick_line_becomes_thin(self):
        img = np.zeros((30, 30), dtype=bool)
        img[10:16, 2:28] = True  # 6-px-thick horizontal bar
        skeleton = zhang_suen_thin(img)
        # Interior columns carry exactly one skeleton pixel.
        per_column = skeleton[:, 5:25].sum(axis=0)
        assert (per_column == 1).all()

    def test_skeleton_is_subset(self):
        rng = np.random.default_rng(0)
        img = binarize(_stripes(angle=0.5) + rng.normal(0, 0.02, (96, 96)))
        skeleton = zhang_suen_thin(img)
        assert not (skeleton & ~img).any()

    def test_empty_input(self):
        assert not zhang_suen_thin(np.zeros((20, 20), dtype=bool)).any()

    def test_single_pixel_survives(self):
        img = np.zeros((9, 9), dtype=bool)
        img[4, 4] = True
        assert zhang_suen_thin(img)[4, 4]

    def test_idempotent(self):
        img = np.zeros((30, 30), dtype=bool)
        img[10:16, 2:28] = True
        once = zhang_suen_thin(img)
        twice = zhang_suen_thin(once)
        assert (once == twice).all()
