"""Shared fingerprint fixtures — masters and templates are expensive, so
they are synthesized once per test session."""

import numpy as np
import pytest

from repro.fingerprint import enroll_master, synthesize_master


@pytest.fixture(scope="session")
def master_pair():
    """Two distinct masters from one seeded stream."""
    rng = np.random.default_rng(1234)
    return (
        synthesize_master("fixture-f0", rng),
        synthesize_master("fixture-f1", rng),
    )


@pytest.fixture(scope="session")
def enrolled_pair(master_pair):
    """Templates for the two fixture masters."""
    rng = np.random.default_rng(99)
    return tuple(enroll_master(m, rng) for m in master_pair)
