"""Ridge-texture descriptors and score-level fusion (paper ref [12])."""

import numpy as np
import pytest

from repro.fingerprint import (
    CaptureCondition,
    FusedMatcher,
    MinutiaeMatcher,
    TextureDescriptor,
    enroll_master,
    minutiae_from_image,
    render_impression,
    synthesize_master,
    texture_similarity,
)


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(9)
    master_a = synthesize_master("tex-a", rng)
    master_b = synthesize_master("tex-b", rng)
    return master_a, master_b


@pytest.fixture(scope="module")
def descriptors(pair):
    out = {}
    for master in pair:
        impression = render_impression(
            master, CaptureCondition(noise=0.02), np.random.default_rng(0))
        out[master.finger_id] = TextureDescriptor.from_image(
            impression.image, impression.mask)
    return out


class TestDescriptor:
    def test_shapes_and_ranges(self, descriptors):
        descriptor = descriptors["tex-a"]
        assert descriptor.orientation.shape == descriptor.weight.shape
        assert (descriptor.orientation >= 0).all()
        assert (descriptor.orientation < np.pi + 1e-9).all()
        assert (descriptor.weight >= 0).all() and (descriptor.weight <= 1).all()

    def test_foreground_cells_have_weight(self, descriptors):
        descriptor = descriptors["tex-a"]
        assert (descriptor.weight > 0.05).sum() > 100

    def test_serialization_roundtrip(self, descriptors):
        descriptor = descriptors["tex-a"]
        restored = TextureDescriptor.from_bytes(descriptor.to_bytes())
        assert restored.stride == descriptor.stride
        assert np.allclose(restored.orientation, descriptor.orientation,
                           atol=np.pi / 128)
        assert np.allclose(restored.weight, descriptor.weight, atol=1 / 128)

    def test_blank_image_has_no_live_cells(self):
        descriptor = TextureDescriptor.from_image(np.full((96, 96), 0.5))
        positions, _, _ = descriptor.pixel_points()
        assert len(positions) == 0


class TestSimilarity:
    def test_self_similarity_high(self, descriptors):
        descriptor = descriptors["tex-a"]
        score = texture_similarity(descriptor, descriptor, 0.0, (0.0, 0.0))
        assert score > 0.85

    def test_cross_finger_lower(self, descriptors):
        a, b = descriptors["tex-a"], descriptors["tex-b"]
        self_score = texture_similarity(a, a, 0.0, (0.0, 0.0))
        cross_score = texture_similarity(a, b, 0.0, (0.0, 0.0))
        assert cross_score < self_score

    def test_no_overlap_scores_zero(self, descriptors):
        a = descriptors["tex-a"]
        assert texture_similarity(a, a, 0.0, (10000.0, 10000.0)) == 0.0

    def test_empty_probe_scores_zero(self, descriptors):
        empty = TextureDescriptor.from_image(np.full((96, 96), 0.5))
        assert texture_similarity(descriptors["tex-a"], empty, 0.0,
                                  (0.0, 0.0)) == 0.0

    def test_alignment_recovers_rotation(self, pair, descriptors):
        """A rotated probe scores high under the matcher's alignment."""
        master_a, _ = pair
        rng = np.random.default_rng(3)
        probe = render_impression(
            master_a, CaptureCondition(rotation_deg=15.0, noise=0.03), rng)
        probe_descriptor = TextureDescriptor.from_image(probe.image,
                                                        probe.mask)
        template = enroll_master(master_a, np.random.default_rng(4))
        probe_minutiae = minutiae_from_image(probe.image, probe.mask)
        result = MinutiaeMatcher().match(template.minutiae, probe_minutiae)
        assert result.matched_pairs > 0
        aligned = texture_similarity(descriptors["tex-a"], probe_descriptor,
                                     result.rotation, result.offset)
        unaligned = texture_similarity(descriptors["tex-a"],
                                       probe_descriptor, 0.0, (0.0, 0.0))
        assert aligned > unaligned


class TestFusedMatcher:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FusedMatcher(minutiae_weight=1.5)

    def test_fused_separation(self, pair, descriptors):
        master_a, master_b = pair
        rng = np.random.default_rng(5)
        template_a = enroll_master(master_a, np.random.default_rng(6))
        template_b = enroll_master(master_b, np.random.default_rng(7))
        fused = FusedMatcher()
        genuine_scores, impostor_scores = [], []
        for _ in range(5):
            condition = CaptureCondition(
                center=(float(rng.uniform(70, 120)),
                        float(rng.uniform(70, 120))),
                radius=55.0, rotation_deg=float(rng.uniform(-15, 15)),
                noise=0.05)
            probe = render_impression(master_a, condition, rng)
            probe_minutiae = minutiae_from_image(probe.image, probe.mask)
            if len(probe_minutiae) < 4:
                continue
            probe_texture = TextureDescriptor.from_image(probe.image,
                                                         probe.mask)
            genuine_scores.append(fused.match(
                template_a.minutiae, descriptors["tex-a"],
                probe_minutiae, probe_texture).score)
            impostor_scores.append(fused.match(
                template_b.minutiae, descriptors["tex-b"],
                probe_minutiae, probe_texture).score)
        assert np.mean(genuine_scores) > np.mean(impostor_scores) + 0.1

    def test_no_minutiae_alignment_falls_back(self, descriptors):
        fused = FusedMatcher(minutiae_weight=0.6)
        result = fused.match([], descriptors["tex-a"], [],
                             descriptors["tex-a"])
        assert result.score == 0.0
        assert result.texture_score == 0.0

    def test_result_contains_components(self, pair, descriptors):
        master_a, _ = pair
        rng = np.random.default_rng(8)
        template = enroll_master(master_a, np.random.default_rng(9))
        probe = render_impression(master_a,
                                  CaptureCondition(noise=0.03), rng)
        probe_minutiae = minutiae_from_image(probe.image, probe.mask)
        probe_texture = TextureDescriptor.from_image(probe.image, probe.mask)
        result = FusedMatcher().match(template.minutiae,
                                      descriptors["tex-a"],
                                      probe_minutiae, probe_texture)
        assert 0.0 <= result.texture_score <= 1.0
        assert result.score == pytest.approx(
            0.6 * result.minutiae.score + 0.4 * result.texture_score)
