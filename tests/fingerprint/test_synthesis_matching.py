"""Synthesis, impressions, minutiae, matching, quality, templates, datasets."""

import numpy as np
import pytest

from repro.fingerprint import (
    BIFURCATION,
    ENDING,
    CaptureCondition,
    DifficultyProfile,
    FingerprintClass,
    FingerprintTemplate,
    MinutiaeMatcher,
    QualityGate,
    assess_quality,
    build_dataset,
    enroll_from_impressions,
    minutiae_from_image,
    render_impression,
    synthesize_master,
)
from repro.fingerprint.scoremodel import (
    DEFAULT_FULL_MODEL,
    DEFAULT_PARTIAL_MODEL,
    CalibratedScoreModel,
)


class TestSynthesis:
    def test_deterministic_under_seed(self):
        a = synthesize_master("f", np.random.default_rng(5))
        b = synthesize_master("f", np.random.default_rng(5))
        assert np.allclose(a.image, b.image)
        assert a.pattern_name == b.pattern_name

    def test_different_seeds_different_fingers(self):
        a = synthesize_master("f", np.random.default_rng(5))
        b = synthesize_master("f", np.random.default_rng(6))
        assert not np.allclose(a.image, b.image)

    def test_image_in_unit_range(self, master_pair):
        for master in master_pair:
            assert (master.image >= 0).all() and (master.image <= 1).all()

    def test_realistic_minutiae_density(self, master_pair):
        for master in master_pair:
            count = len(minutiae_from_image(master.image))
            assert 15 <= count <= 90, f"unrealistic minutiae count {count}"

    def test_explicit_pattern_respected(self):
        master = synthesize_master(
            "f", np.random.default_rng(0), pattern=FingerprintClass.whorl())
        assert master.pattern_name == "whorl"

    def test_ridge_period_near_requested_wavelength(self):
        master = synthesize_master("f", np.random.default_rng(1), wavelength=9.0)
        # The dominant 2-D spatial frequency should sit near 1/9 cycles/px.
        img = master.image - master.image.mean()
        spectrum = np.abs(np.fft.fftshift(np.fft.fft2(img)))
        cy, cx = spectrum.shape[0] // 2, spectrum.shape[1] // 2
        spectrum[cy - 1:cy + 2, cx - 1:cx + 2] = 0.0  # drop DC neighbourhood
        peak = np.unravel_index(np.argmax(spectrum), spectrum.shape)
        radial_freq = np.hypot(peak[0] - cy, peak[1] - cx) / img.shape[0]
        period = 1.0 / radial_freq
        assert 7.5 < period < 11.0


class TestImpression:
    def test_full_press_covers_most_frame(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(master_pair[0], CaptureCondition(), rng)
        assert imp.coverage > 0.9

    def test_partial_press_is_partial(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(
            master_pair[0],
            CaptureCondition(center=(96, 96), radius=40), rng)
        expected = np.pi * 40**2 / (192 * 192)
        assert abs(imp.coverage - expected) < 0.05

    def test_identity_condition_reproduces_master(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(
            master_pair[0], CaptureCondition(noise=0.0), rng)
        diff = np.abs(imp.image[imp.mask]
                      - master_pair[0].image[imp.mask]).mean()
        assert diff < 0.02

    def test_rotation_moves_content(self, master_pair):
        rng = np.random.default_rng(0)
        a = render_impression(master_pair[0], CaptureCondition(noise=0.0), rng)
        b = render_impression(
            master_pair[0], CaptureCondition(noise=0.0, rotation_deg=30), rng)
        assert np.abs(a.image - b.image).mean() > 0.05

    def test_noise_validation(self, master_pair):
        with pytest.raises(ValueError):
            render_impression(master_pair[0], CaptureCondition(noise=-1),
                              np.random.default_rng(0))

    def test_pressure_validation(self):
        with pytest.raises(ValueError):
            CaptureCondition(pressure=1.5).validate()

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            CaptureCondition(radius=-3.0).validate()

    def test_dropout_replaces_with_background(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(
            master_pair[0], CaptureCondition(noise=0.0, dropout=0.5), rng)
        assert (imp.image[imp.mask] == 0.5).mean() > 0.3

    def test_output_shape_override(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(master_pair[0], CaptureCondition(), rng,
                                output_shape=(96, 128))
        assert imp.image.shape == (96, 128)
        assert imp.mask.shape == (96, 128)


class TestMinutiae:
    def test_kinds_present(self, master_pair):
        minutiae = minutiae_from_image(master_pair[0].image)
        kinds = {m.kind for m in minutiae}
        assert kinds <= {ENDING, BIFURCATION}
        assert len(minutiae) > 10

    def test_minimum_separation_enforced(self, master_pair):
        minutiae = minutiae_from_image(master_pair[0].image)
        for i, a in enumerate(minutiae):
            for b in minutiae[i + 1:]:
                assert (a.row - b.row) ** 2 + (a.col - b.col) ** 2 >= 36.0

    def test_directions_in_range(self, master_pair):
        for m in minutiae_from_image(master_pair[0].image):
            assert 0.0 <= m.direction < 2 * np.pi

    def test_blank_image_yields_nothing(self):
        assert minutiae_from_image(np.full((96, 96), 0.5)) == []


class TestMatching:
    @pytest.fixture(scope="class")
    def matcher(self):
        return MinutiaeMatcher()

    def test_self_match_is_high(self, enrolled_pair, matcher):
        template = enrolled_pair[0]
        result = matcher.match(template.minutiae, template.minutiae)
        assert result.score > 0.85
        assert result.matched_pairs == template.size

    def test_empty_probe(self, enrolled_pair, matcher):
        result = matcher.match(enrolled_pair[0].minutiae, [])
        assert result.score == 0.0 and result.is_empty

    def test_genuine_beats_impostor_full_press(self, master_pair, enrolled_pair,
                                               matcher):
        rng = np.random.default_rng(11)
        probe = render_impression(
            master_pair[0],
            CaptureCondition(rotation_deg=10.0, noise=0.05), rng)
        probe_minutiae = minutiae_from_image(probe.image, probe.mask)
        genuine = matcher.match(enrolled_pair[0].minutiae, probe_minutiae)
        impostor = matcher.match(enrolled_pair[1].minutiae, probe_minutiae)
        assert genuine.score > 0.25
        assert impostor.score < 0.15
        assert genuine.score > impostor.score + 0.1

    def test_partial_probe_genuine_beats_impostor_on_average(
            self, master_pair, enrolled_pair, matcher):
        rng = np.random.default_rng(23)
        genuine_scores, impostor_scores = [], []
        for _ in range(6):
            condition = CaptureCondition(
                center=(float(rng.uniform(60, 130)), float(rng.uniform(60, 130))),
                radius=48.0,
                rotation_deg=float(rng.uniform(-20, 20)),
                noise=0.05,
            )
            probe = render_impression(master_pair[0], condition, rng)
            probe_minutiae = minutiae_from_image(probe.image, probe.mask)
            if len(probe_minutiae) < 5:
                continue
            genuine_scores.append(
                matcher.match(enrolled_pair[0].minutiae, probe_minutiae).score)
            impostor_scores.append(
                matcher.match(enrolled_pair[1].minutiae, probe_minutiae).score)
        assert len(genuine_scores) >= 3
        assert np.mean(genuine_scores) > np.mean(impostor_scores) + 0.08

    def test_rotation_recovered(self, master_pair, enrolled_pair, matcher):
        rng = np.random.default_rng(31)
        probe = render_impression(
            master_pair[0],
            CaptureCondition(rotation_deg=20.0, noise=0.03), rng)
        probe_minutiae = minutiae_from_image(probe.image, probe.mask)
        result = matcher.match(enrolled_pair[0].minutiae, probe_minutiae)
        recovered_deg = np.degrees(
            np.mod(result.rotation + np.pi, 2 * np.pi) - np.pi)
        assert abs(abs(recovered_deg) - 20.0) < 8.0

    def test_invalid_tolerances(self):
        with pytest.raises(ValueError):
            MinutiaeMatcher(distance_tolerance=0)
        with pytest.raises(ValueError):
            MinutiaeMatcher(angle_tolerance=-1)
        with pytest.raises(ValueError):
            MinutiaeMatcher(max_hypotheses=0)

    def test_score_in_unit_range(self, enrolled_pair, matcher):
        result = matcher.match(enrolled_pair[0].minutiae,
                               enrolled_pair[1].minutiae)
        assert 0.0 <= result.score <= 1.0


class TestQuality:
    def test_clean_full_press_scores_high(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(master_pair[0],
                                CaptureCondition(noise=0.02), rng)
        assert assess_quality(imp).score > 0.5

    def test_fast_motion_degrades_quality(self, master_pair):
        rng = np.random.default_rng(0)
        clean = render_impression(master_pair[0],
                                  CaptureCondition(noise=0.02), rng)
        blurred = render_impression(
            master_pair[0],
            CaptureCondition(noise=0.02, motion_px=6.0), rng)
        assert assess_quality(blurred).score < assess_quality(clean).score

    def test_tiny_contact_degrades_quality(self, master_pair):
        rng = np.random.default_rng(0)
        full = render_impression(master_pair[0],
                                 CaptureCondition(noise=0.02), rng)
        tiny = render_impression(
            master_pair[0],
            CaptureCondition(center=(96, 96), radius=14, noise=0.02), rng)
        assert assess_quality(tiny).score < assess_quality(full).score

    def test_empty_contact_scores_zero(self, master_pair):
        rng = np.random.default_rng(0)
        imp = render_impression(
            master_pair[0],
            CaptureCondition(center=(-500, -500), radius=10), rng)
        assert assess_quality(imp).score == 0.0

    def test_gate_counts(self, master_pair):
        rng = np.random.default_rng(0)
        gate = QualityGate(threshold=0.35)
        good = render_impression(master_pair[0],
                                 CaptureCondition(noise=0.02), rng)
        bad = render_impression(
            master_pair[0],
            CaptureCondition(center=(96, 96), radius=12, motion_px=8.0,
                             noise=0.2), rng)
        passed_good, _ = gate.evaluate(good)
        passed_bad, _ = gate.evaluate(bad)
        assert passed_good and not passed_bad
        assert gate.accepted == 1 and gate.rejected == 1
        assert gate.acceptance_rate == 0.5

    def test_gate_threshold_validation(self):
        with pytest.raises(ValueError):
            QualityGate(threshold=1.5)


class TestTemplates:
    def test_serialization_roundtrip(self, enrolled_pair):
        template = enrolled_pair[0]
        restored = FingerprintTemplate.from_bytes(template.to_bytes())
        assert restored.finger_id == template.finger_id
        assert restored.size == template.size
        assert restored.minutiae == template.minutiae

    def test_enrollment_needs_impressions(self):
        with pytest.raises(ValueError):
            enroll_from_impressions("f", [])

    def test_multi_impression_enrollment_not_smaller(self, master_pair):
        rng = np.random.default_rng(4)
        conditions = [CaptureCondition(noise=0.03) for _ in range(3)]
        imps = [render_impression(master_pair[0], c, rng) for c in conditions]
        single = enroll_from_impressions("f", imps[:1])
        multi = enroll_from_impressions("f", imps)
        assert multi.size >= single.size
        assert multi.source_impressions == 3


class TestDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset("unit", n_fingers=3, n_impressions=2,
                             profile=DifficultyProfile.enrollment_grade(),
                             seed=77, master_shape=(128, 128))

    def test_structure(self, dataset):
        assert len(dataset.masters) == 3
        assert all(len(v) == 2 for v in dataset.impressions.values())

    def test_genuine_pair_count(self, dataset):
        # 3 fingers x C(2,2)=1 pair each.
        assert len(dataset.genuine_pairs()) == 3

    def test_impostor_pair_count(self, dataset):
        rng = np.random.default_rng(0)
        assert len(dataset.impostor_pairs(rng)) == 3  # C(3,2)
        assert len(dataset.impostor_pairs(rng, n_pairs=2)) == 2

    def test_deterministic(self):
        a = build_dataset("d", 2, 1, DifficultyProfile.enrollment_grade(),
                          seed=5, master_shape=(96, 96))
        b = build_dataset("d", 2, 1, DifficultyProfile.enrollment_grade(),
                          seed=5, master_shape=(96, 96))
        assert np.allclose(a.impressions[a.finger_ids[0]][0].image,
                           b.impressions[b.finger_ids[0]][0].image)

    def test_master_lookup(self, dataset):
        assert dataset.master_of(dataset.finger_ids[0]).finger_id \
            == dataset.finger_ids[0]
        with pytest.raises(KeyError):
            dataset.master_of("nope")

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            build_dataset("d", 0, 1, DifficultyProfile.enrollment_grade(), seed=1)

    def test_touch_grade_is_partial(self):
        ds = build_dataset("t", 1, 3, DifficultyProfile.touch_grade(),
                           seed=9, master_shape=(192, 192))
        coverages = [imp.coverage for imp in ds.impressions[ds.finger_ids[0]]]
        # An 80-px contact on a 192-px master covers at most ~55 %.
        assert all(c < 0.65 for c in coverages)


class TestScoreModel:
    def test_sampling_ranges(self):
        rng = np.random.default_rng(0)
        for genuine in (True, False):
            scores = DEFAULT_PARTIAL_MODEL.sample_many(genuine, 500, rng)
            assert (scores >= 0).all() and (scores <= 1).all()

    def test_genuine_higher_than_impostor(self):
        rng = np.random.default_rng(0)
        g = DEFAULT_PARTIAL_MODEL.sample_many(True, 2000, rng).mean()
        i = DEFAULT_PARTIAL_MODEL.sample_many(False, 2000, rng).mean()
        assert g > i + 0.2

    def test_full_model_stronger_than_partial(self):
        rng = np.random.default_rng(0)
        full = DEFAULT_FULL_MODEL.sample_many(True, 2000, rng).mean()
        partial = DEFAULT_PARTIAL_MODEL.sample_many(True, 2000, rng).mean()
        assert full > partial

    def test_decision_rates(self):
        frr, far = DEFAULT_PARTIAL_MODEL.decision_rates(0.25)
        assert 0.0 <= frr <= 1.0 and 0.0 <= far <= 1.0
        assert far < 0.2

    def test_json_roundtrip(self):
        model = CalibratedScoreModel(
            genuine_scores=np.array([0.5, 0.6]),
            impostor_scores=np.array([0.1]),
            jitter=0.01,
        )
        restored = CalibratedScoreModel.from_json(model.to_json())
        assert np.allclose(restored.genuine_scores, model.genuine_scores)
        assert restored.jitter == model.jitter

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            CalibratedScoreModel(np.array([]), np.array([0.1]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CalibratedScoreModel(np.array([1.2]), np.array([0.1]))

    def test_deterministic_under_rng(self):
        a = DEFAULT_PARTIAL_MODEL.sample_many(True, 10, np.random.default_rng(3))
        b = DEFAULT_PARTIAL_MODEL.sample_many(True, 10, np.random.default_rng(3))
        assert np.allclose(a, b)
