"""VerificationCache: LRU accounting plus cached == uncached correctness."""

import dataclasses

import numpy as np
import pytest

from repro.crypto import HmacDrbg, generate_keypair
from repro.fingerprint import enroll_master, synthesize_master
from repro.flock.fingerprint_processor import ImageFingerprintProcessor
from repro.runtime import VerificationCache


class TestCacheMechanics:
    def test_memoize_computes_once(self):
        cache = VerificationCache()
        calls = []

        def compute():
            calls.append(1)
            return "answer"

        assert cache.memoize("k", b"key", compute) == "answer"
        assert cache.memoize("k", b"key", compute) == "answer"
        assert len(calls) == 1
        assert cache.hits["k"] == 1
        assert cache.misses["k"] == 1
        assert cache.hit_rate("k") == 0.5
        assert len(cache) == 1

    def test_kinds_do_not_collide(self):
        cache = VerificationCache()
        assert cache.memoize("a", b"same", lambda: 1) == 1
        assert cache.memoize("b", b"same", lambda: 2) == 2
        assert cache.lookups() == 2
        assert cache.lookups("a") == 1

    def test_lru_eviction_prefers_recent_entries(self):
        cache = VerificationCache(max_entries=2)
        cache.memoize("k", b"1", lambda: 1)
        cache.memoize("k", b"2", lambda: 2)
        cache.memoize("k", b"1", lambda: 1)  # touch 1 -> 2 is now LRU
        cache.memoize("k", b"3", lambda: 3)  # evicts 2
        assert cache.evictions == 1
        assert len(cache) == 2
        cache.memoize("k", b"1", lambda: pytest.fail("1 was evicted"))
        cache.memoize("k", b"2", lambda: "recomputed")
        assert cache.misses["k"] == 4  # 1, 2, 3, and 2 again

    def test_clear_resets_everything(self):
        cache = VerificationCache()
        cache.memoize("k", b"1", lambda: 1)
        cache.memoize("k", b"1", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.lookups() == 0
        assert cache.hit_rate() == 0.0
        assert cache.stats() == []

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            VerificationCache(max_entries=0)


class TestCachedEqualsUncached:
    """The satellite guarantee: a cached answer is byte-identical to a
    recomputed one — across 1,000 randomized verification queries."""

    def test_cert_signature_checks(self, ca):
        drbg = HmacDrbg(b"cache-correctness-keys")
        keys = [generate_keypair(drbg, bits=512) for _ in range(6)]
        certs = []
        for serial in range(20):
            public = keys[serial % len(keys)].public_key
            good = ca.issue(f"cache-dev-{serial}", "flock-device", public)
            # A tampered twin: same TBS bytes, one signature byte flipped.
            bad_sig = bytes([good.signature[0] ^ 0x01]) + good.signature[1:]
            certs.append(good)
            certs.append(dataclasses.replace(good, signature=bad_sig))

        cache = VerificationCache()
        rng = np.random.default_rng(2024)
        valid_seen = set()
        for _ in range(1000):
            cert = certs[rng.integers(len(certs))]
            direct = cert.signature_valid(ca.public_key)
            cached = cache.memoize("cert-signature", cert.fingerprint(),
                                   lambda c=cert:
                                   c.signature_valid(ca.public_key))
            assert cached == direct
            valid_seen.add(direct)

        assert valid_seen == {True, False}  # both outcomes were exercised
        assert cache.lookups("cert-signature") == 1000
        assert cache.misses["cert-signature"] == len(certs)
        assert cache.hit_rate("cert-signature") == (1000 - len(certs)) / 1000

    def test_template_match_scores(self):
        alice = synthesize_master("alice-thumb", np.random.default_rng(5))
        eve = synthesize_master("eve-thumb", np.random.default_rng(900))
        template = enroll_master(alice, np.random.default_rng(6))
        probes = [enroll_master(alice, np.random.default_rng(7)).minutiae,
                  enroll_master(eve, np.random.default_rng(8)).minutiae,
                  template.minutiae]

        plain = ImageFingerprintProcessor(template)
        cached = ImageFingerprintProcessor(template)
        cache = VerificationCache()
        cached.match_cache = cache

        for probe in probes:
            expected = plain._best_score(probe)
            assert cached._best_score(probe) == expected  # miss
            assert cached._best_score(probe) == expected  # hit
        assert cache.misses["template-match"] == len(probes)
        assert cache.hits["template-match"] == len(probes)
