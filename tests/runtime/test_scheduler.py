"""EventLoop ordering/determinism and ServiceQueue latency arithmetic."""

import pytest

from repro.runtime import EventLoop, ServiceQueue


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        ran = []
        loop.schedule(3.0, "c", lambda: ran.append("c"))
        loop.schedule(1.0, "a", lambda: ran.append("a"))
        loop.schedule(2.0, "b", lambda: ran.append("b"))
        assert loop.run() == 3
        assert ran == ["a", "b", "c"]
        assert loop.trace == [(1.0, "a"), (2.0, "b"), (3.0, "c")]
        assert loop.now == 3.0

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        ran = []
        for name in ("first", "second", "third"):
            loop.schedule(5.0, name, lambda name=name: ran.append(name))
        loop.run()
        assert ran == ["first", "second", "third"]

    def test_actions_can_schedule_more_events(self):
        loop = EventLoop()
        ran = []

        def tick(n):
            ran.append((loop.now, n))
            if n < 3:
                loop.schedule_after(1.5, f"tick-{n + 1}",
                                    lambda: tick(n + 1))

        loop.schedule(0.0, "tick-0", lambda: tick(0))
        loop.run()
        assert ran == [(0.0, 0), (1.5, 1), (3.0, 2), (4.5, 3)]
        assert loop.pending == 0
        assert loop.processed == 4

    def test_scheduling_into_the_past_is_refused(self):
        loop = EventLoop()
        loop.schedule(2.0, "later", lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(1.0, "too-late", lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_after(-0.1, "negative", lambda: None)

    def test_max_events_pauses_the_loop(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), f"e{i}", lambda: None)
        assert loop.run(max_events=2) == 2
        assert loop.pending == 3
        assert loop.now == 1.0
        assert loop.run() == 3


class TestServiceQueue:
    def test_idle_server_starts_immediately(self):
        queue = ServiceQueue()
        assert queue.begin(10.0, 0.5) == (10.0, 10.5)

    def test_busy_server_queues_fifo(self):
        queue = ServiceQueue()
        queue.begin(0.0, 1.0)
        # Arrives at 0.2 while the first job runs until 1.0: waits 0.8.
        start, completion = queue.begin(0.2, 1.0)
        assert start == 1.0
        assert completion == 2.0
        # A later arrival after the backlog drains starts on time.
        assert queue.begin(5.0, 0.25) == (5.0, 5.25)
        assert queue.served == 3
        assert queue.busy_time_s == 2.25

    def test_utilization(self):
        queue = ServiceQueue()
        queue.begin(0.0, 2.0)
        queue.begin(4.0, 2.0)
        assert queue.utilization(8.0) == pytest.approx(0.5)
        assert queue.utilization(0.0) == 0.0
        # Capped at 1.0 even when the horizon undercounts busy time.
        assert queue.utilization(1.0) == 1.0

    def test_negative_service_time_refused(self):
        with pytest.raises(ValueError):
            ServiceQueue().begin(0.0, -1.0)
