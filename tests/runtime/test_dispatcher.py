"""Consistent-hash routing and account migration across the replica pool."""

import numpy as np
import pytest

from repro.fingerprint import DEFAULT_PARTIAL_MODEL, enroll_master, synthesize_master
from repro.net import MobileDevice, ProtocolError, TrustClient, UntrustedChannel
from repro.runtime import BUTTON_XY, ConsistentHashRouter, ServerPool


class TestConsistentHashRouter:
    def test_routing_is_stable(self):
        shards = ["shard-0", "shard-1", "shard-2", "shard-3"]
        a = ConsistentHashRouter(shards)
        b = ConsistentHashRouter(shards)
        accounts = [f"user-{i:05d}" for i in range(100)]
        assert a.assignments(accounts) == b.assignments(accounts)

    def test_every_shard_gets_accounts(self):
        router = ConsistentHashRouter([f"shard-{i}" for i in range(4)])
        accounts = [f"user-{i:05d}" for i in range(400)]
        homes = set(router.assignments(accounts).values())
        assert homes == set(router.shard_ids)

    def test_adding_a_shard_only_moves_accounts_onto_it(self):
        accounts = [f"user-{i:05d}" for i in range(400)]
        router = ConsistentHashRouter([f"shard-{i}" for i in range(4)])
        before = router.assignments(accounts)
        router.add_shard("shard-4")
        after = router.assignments(accounts)
        moved = [a for a in accounts if before[a] != after[a]]
        # Everything that moved, moved *to* the new shard (the defining
        # property of consistent hashing), and only roughly K/N moved.
        assert moved, "a 5th shard must claim part of the ring"
        assert all(after[a] == "shard-4" for a in moved)
        assert len(moved) / len(accounts) < 0.45

    def test_removing_a_shard_only_moves_its_accounts(self):
        accounts = [f"user-{i:05d}" for i in range(400)]
        router = ConsistentHashRouter([f"shard-{i}" for i in range(5)])
        before = router.assignments(accounts)
        router.remove_shard("shard-2")
        after = router.assignments(accounts)
        for account in accounts:
            if before[account] != "shard-2":
                assert after[account] == before[account]
            else:
                assert after[account] != "shard-2"

    def test_membership_errors(self):
        router = ConsistentHashRouter(["shard-0"])
        with pytest.raises(ValueError):
            router.add_shard("shard-0")
        with pytest.raises(KeyError):
            router.remove_shard("shard-9")
        with pytest.raises(ValueError):
            ConsistentHashRouter(replicas=0)
        with pytest.raises(LookupError):
            ConsistentHashRouter().route("user")


class TestServerPool:
    @pytest.fixture(scope="class")
    def deployment(self, ca):
        """A 3-shard pool plus one registered device/account pair.

        The account name is chosen (deterministically) so that bringing up
        ``shard-3`` re-homes it — the interesting rebalance case.
        """
        pool = ServerPool("www.pool.example", ca, b"pool-service-key", 3,
                          key_bits=512)
        grown = ConsistentHashRouter([f"shard-{i}" for i in range(4)])
        account = next(a for a in (f"user-{i:05d}" for i in range(1000))
                       if pool.router.route(a) != grown.route(a))

        master = synthesize_master("pool-thumb", np.random.default_rng(50))
        template = enroll_master(master, np.random.default_rng(51))
        device = MobileDevice("pool-dev", b"pool-dev-seed", ca=ca,
                              processor_mode="modeled", key_bits=512)
        device.flock.enroll_local_user(template,
                                       score_model=DEFAULT_PARTIAL_MODEL)
        pool.create_account(account, "pool-reset-phrase")
        client = TrustClient(device, pool.shard_for(account),
                             UntrustedChannel())
        outcome = client.register(account, BUTTON_XY, master,
                                  np.random.default_rng(52))
        assert outcome.success, outcome.reason
        return pool, client, account, master

    def test_replicas_share_the_service_key(self, deployment):
        pool, _, _, _ = deployment
        keys = {pool.shards[sid].certificate.public_key.to_bytes()
                for sid in pool.shard_ids}
        assert len(keys) == 1

    def test_account_lives_on_exactly_one_shard(self, deployment):
        pool, _, account, _ = deployment
        holders = [sid for sid in pool.shard_ids
                   if account in pool.shards[sid].accounts()]
        assert holders == [pool.router.route(account)]

    def test_rebalance_moves_account_and_login_follows(self, deployment):
        pool, client, account, master = deployment
        old_home = pool.router.route(account)

        new_shard = pool.add_shard()
        moved = pool.rebalance()
        new_home = pool.router.route(account)
        assert new_home == new_shard
        assert (account, old_home, new_home) in moved
        assert account not in pool.shards[old_home].accounts()

        # The binding verifies against the new replica: same service key.
        client.server = pool.shard_for(account)
        outcome = client.login(account, BUTTON_XY, master,
                               np.random.default_rng(53))
        assert outcome.success, outcome.reason
        client.device.flock.close_session(pool.domain)

        # A second rebalance is a no-op: everything is already home.
        assert pool.rebalance() == []

    def test_remove_shard_drains_accounts(self, ca):
        pool = ServerPool("www.drain.example", ca, b"drain-key", 3,
                          key_bits=512)
        accounts = [f"user-{i:05d}" for i in range(30)]
        for account in accounts:
            pool.create_account(account, "pw")
        victim = "shard-1"
        resident = [a for a in accounts if pool.router.route(a) == victim]
        assert resident, "the victim shard should hold some accounts"

        moved = pool.remove_shard(victim)
        assert sorted(m[0] for m in moved) == sorted(resident)
        assert victim not in pool.shard_ids
        assert sum(pool.account_totals().values()) == len(accounts)
        for account in accounts:
            assert account in pool.shard_for(account).accounts()

    def test_export_import_round_trip_errors(self, ca):
        pool = ServerPool("www.exp.example", ca, b"exp-key", 2, key_bits=512)
        pool.create_account("alice", "pw")
        home = pool.shard_for("alice")
        other = pool.shards[next(sid for sid in pool.shard_ids
                                 if pool.shards[sid] is not home)]
        with pytest.raises(ProtocolError) as excinfo:
            other.export_account("alice")
        assert excinfo.value.reason == "unknown-account"
        record = home.export_account("alice")
        home.import_account("alice", record)
        with pytest.raises(ValueError):
            home.import_account("alice", record)
