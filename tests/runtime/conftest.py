"""Shared fleet-runtime fixtures.

Runtime tests exercise scheduling, routing and caching — not RSA
arithmetic — so everything uses small (512-bit) keys and the modeled
fingerprint processor.
"""

import pytest

from repro.crypto import CertificateAuthority, HmacDrbg


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(rng=HmacDrbg(b"ca-runtime-tests"),
                                key_bits=512)
