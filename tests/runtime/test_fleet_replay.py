"""Fleet determinism: one config, two runs, byte-identical everything.

The small fleet here (tier-1 sized) is the replay witness for the load
benchmark in ``benchmarks/test_fleet_load.py``, which runs the full
1,000-device default configuration.  Same-process replays share one
hash seed, so :class:`TestHashSeedWitness` additionally runs the fleet
in two subprocesses under *different* ``PYTHONHASHSEED`` values — the
dynamic counterpart of the static DT604 rule: if any set-iteration
order reached the summary or the trace, the bytes would differ.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime import (
    EXPECTED_REJECTIONS,
    FleetConfig,
    FleetSimulation,
    draw_risk,
)

import numpy as np


SMALL = FleetConfig(n_devices=36, n_shards=4, seed=11,
                    requests_per_device=2, challenge_fraction=0.2,
                    hijack_fraction=0.1, prototype_count=4,
                    ramp_s=10.0)


@pytest.fixture(scope="module")
def result():
    return FleetSimulation(SMALL).run()


@pytest.fixture(scope="module")
def replay():
    return FleetSimulation(SMALL).run()


class TestDeterministicReplay:
    def test_trace_is_identical(self, result, replay):
        assert result.trace == replay.trace

    def test_summary_is_byte_identical(self, result, replay):
        assert result.summary.encode("utf-8") == \
            replay.summary.encode("utf-8")

    def test_metrics_are_identical(self, result, replay):
        assert result.metrics.outcomes == replay.metrics.outcomes
        assert result.metrics.horizon_s == replay.metrics.horizon_s
        assert result.metrics.bytes_to_server == \
            replay.metrics.bytes_to_server
        assert result.cache.stats() == replay.cache.stats()

    def test_different_seed_diverges(self, result):
        import dataclasses
        other = FleetSimulation(dataclasses.replace(SMALL, seed=12)).run()
        assert other.trace != result.trace


class TestFleetBehavior:
    def test_every_device_progressed(self, result):
        registered = result.metrics.count("register", "ok")
        assert registered == SMALL.n_devices
        assert result.metrics.count("login", "ok") == registered

    def test_only_expected_rejections(self, result):
        assert result.unexpected_rejections == {}
        for code in result.pool.rejection_totals():
            assert code in EXPECTED_REJECTIONS

    def test_workload_mix_produced_both_branches(self, result):
        assert result.metrics.count("challenge", "ok") > 0
        assert result.metrics.count("request", "risk-too-high") > 0

    def test_traffic_spread_over_all_shards(self, result):
        per_shard = {sid: sum(result.pool.shards[sid].endpoint_calls.values())
                     for sid in result.pool.shard_ids}
        assert len(per_shard) == SMALL.n_shards
        assert all(count > 0 for count in per_shard.values())
        assert sum(result.pool.account_totals().values()) == SMALL.n_devices

    def test_cert_cache_amortizes_prototype_batches(self, result):
        # Clones share their prototype's device certificate, so the pool
        # only ever verifies `prototype_count` distinct certs.
        assert result.cache.misses["cert-signature"] == SMALL.prototype_count
        assert result.cache.hits["cert-signature"] == \
            SMALL.n_devices - SMALL.prototype_count

    def test_latency_respects_the_floor(self, result):
        from repro.runtime import SERVICE_TIME_S
        for op, count, mean, p50, p99 in result.metrics.latency_rows():
            floor = SERVICE_TIME_S[op] + SMALL.network_rtt_s
            assert p50 >= floor - 1e-12
            assert p99 >= p50
            assert count > 0

    def test_summary_reports_every_section(self, result):
        for heading in ("fleet overview", "end-to-end latency",
                        "verification cache", "per-shard balance"):
            assert heading in result.summary
        assert "throughput" in result.summary


_REPO_ROOT = Path(__file__).resolve().parents[2]

#: Runs the witness fleet and prints the two observable artifacts: the
#: metrics summary and the full event-trace export.
_WITNESS_SCRIPT = """\
import sys
from repro.runtime import FleetConfig, FleetSimulation

config = FleetConfig(n_devices=int(sys.argv[1]), n_shards=4, seed=11,
                     requests_per_device=2, challenge_fraction=0.2,
                     hijack_fraction=0.1, prototype_count=4, ramp_s=10.0)
result = FleetSimulation(config).run()
sys.stdout.write(result.summary)
sys.stdout.write("\\n--- trace ---\\n")
for stamp, label in result.trace:
    sys.stdout.write(f"{stamp!r} {label}\\n")
"""


def run_fleet_under_hash_seed(hash_seed: int, devices: int = 36,
                              timeout: int = 300) -> bytes:
    """Fleet summary+trace bytes from a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _WITNESS_SCRIPT, str(devices)],
        capture_output=True, env=env, timeout=timeout)
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestHashSeedWitness:
    def test_fleet_output_is_hash_seed_invariant(self):
        first = run_fleet_under_hash_seed(0)
        second = run_fleet_under_hash_seed(1)
        assert b"--- trace ---" in first
        assert first == second


class TestWorkloadDraw:
    def test_risk_bands_match_fractions(self):
        config = SMALL
        rng = np.random.default_rng(99)
        draws = [draw_risk(rng, config) for _ in range(4000)]
        hijack = sum(1 for r in draws if r > 0.75)
        challenged = sum(1 for r in draws if 0.5 < r <= 0.75)
        benign = sum(1 for r in draws if r <= 0.5)
        assert hijack + challenged + benign == len(draws)
        assert hijack / len(draws) == pytest.approx(
            config.hijack_fraction, abs=0.02)
        assert challenged / len(draws) == pytest.approx(
            config.challenge_fraction, abs=0.03)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_devices=0)
        with pytest.raises(ValueError):
            FleetConfig(n_shards=0)
        with pytest.raises(ValueError):
            FleetConfig(challenge_fraction=0.9, hijack_fraction=0.2)
        with pytest.raises(ValueError):
            FleetConfig(processor_mode="quantum")
