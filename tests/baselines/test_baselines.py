"""Password, swipe-sensor, keystroke, cookie-session and fuzzy-vault baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    CookieWebServer,
    FuzzyVault,
    GF16,
    KeystrokeAuthenticator,
    PasswordAuthModel,
    PasswordPolicy,
    SeparateFingerprintSensor,
    TypingProfile,
    crc16,
    encode_minutia,
)
from repro.eval import equal_error_rate
from repro.fingerprint import (
    CaptureCondition,
    Minutia,
    minutiae_from_image,
    render_impression,
    synthesize_master,
)
from repro.net.message import Envelope, ProtocolError


class TestPasswordModel:
    def test_login_latency_positive_and_realistic(self):
        model = PasswordAuthModel()
        latency = model.mean_login_latency_s(np.random.default_rng(0))
        assert 2.0 < latency < 15.0

    def test_dictionary_attack_saturates_at_91pct(self):
        model = PasswordAuthModel()
        assert model.dictionary_attack_success(0) == 0.0
        assert model.dictionary_attack_success(500) == pytest.approx(0.455)
        assert model.dictionary_attack_success(10_000) == pytest.approx(0.91)

    def test_negative_guesses_rejected(self):
        with pytest.raises(ValueError):
            PasswordAuthModel().dictionary_attack_success(-1)

    def test_policy_burden_ordering(self):
        lax = PasswordPolicy()
        strict = PasswordPolicy(min_length=14, require_mixed_case=True,
                                require_digit=True, expiry_days=90)
        assert strict.burden_score() > lax.burden_score()

    def test_table1_axes(self):
        model = PasswordAuthModel()
        assert not model.continuous_verification()
        assert not model.transparent_to_user()
        assert "memorization" in model.user_burden()


class TestSwipeSensor:
    def test_genuine_login_usually_accepted(self):
        sensor = SeparateFingerprintSensor()
        rng = np.random.default_rng(0)
        accepted = sum(sensor.genuine_login(rng).accepted for _ in range(100))
        assert accepted >= 90

    def test_impostor_rarely_accepted(self):
        sensor = SeparateFingerprintSensor()
        rng = np.random.default_rng(1)
        accepted = sum(sensor.authenticate(False, rng).accepted
                       for _ in range(200))
        assert accepted <= 6

    def test_login_takes_seconds(self):
        sensor = SeparateFingerprintSensor()
        latency = sensor.mean_login_latency_s(np.random.default_rng(2))
        assert 1.0 < latency < 6.0

    def test_no_continuity(self):
        assert not SeparateFingerprintSensor.continuous_verification()
        assert not SeparateFingerprintSensor.transparent_to_user()


class TestKeystroke:
    def test_eer_worse_than_fingerprint_but_sane(self):
        rng = np.random.default_rng(3)
        profiles = [TypingProfile.random(f"u{i}", rng) for i in range(6)]
        authenticator = KeystrokeAuthenticator()
        genuine, impostor = authenticator.evaluate(profiles, rng)
        eer, _ = equal_error_rate(genuine, impostor)
        assert 0.005 < eer < 0.45  # clearly usable but weaker than prints

    def test_genuine_scores_higher(self):
        rng = np.random.default_rng(4)
        profiles = [TypingProfile.random(f"u{i}", rng) for i in range(4)]
        authenticator = KeystrokeAuthenticator()
        genuine, impostor = authenticator.evaluate(profiles, rng)
        assert genuine.mean() > impostor.mean()

    def test_unenrolled_user_rejected(self):
        authenticator = KeystrokeAuthenticator()
        profile = TypingProfile.random("u", np.random.default_rng(0))
        sample = profile.sample(10, np.random.default_rng(1))
        with pytest.raises(KeyError):
            authenticator.score("ghost", sample)

    def test_enrollment_validation(self):
        authenticator = KeystrokeAuthenticator()
        with pytest.raises(ValueError):
            authenticator.enroll("u", [])

    def test_needs_two_users(self):
        authenticator = KeystrokeAuthenticator()
        profile = TypingProfile.random("u", np.random.default_rng(0))
        with pytest.raises(ValueError):
            authenticator.evaluate([profile], np.random.default_rng(1))


class TestCookieServer:
    @pytest.fixture()
    def server(self):
        server = CookieWebServer("www.legacy.com", b"legacy-seed")
        server.create_account("alice", "hunter2")
        return server

    def test_login_and_request(self, server):
        response = server.login("alice", "hunter2")
        cookie = response.fields["cookie"]
        page = server.handle_request(Envelope("r", {"cookie": cookie}))
        assert page.fields["account"] == "alice"

    def test_wrong_password(self, server):
        with pytest.raises(ProtocolError, match="bad-credentials"):
            server.login("alice", "wrong")

    def test_stolen_cookie_works_forever(self, server):
        """The vulnerability TRUST eliminates: bearer tokens."""
        cookie = server.login("alice", "hunter2").fields["cookie"]
        for _ in range(10):
            server.handle_request(Envelope("r", {"cookie": cookie}))
        assert server.session_for_cookie(cookie).requests == 10

    def test_bogus_cookie_rejected(self, server):
        with pytest.raises(ProtocolError, match="bad-cookie"):
            server.handle_request(Envelope("r", {"cookie": b"\x00" * 16}))

    def test_duplicate_account(self, server):
        with pytest.raises(ValueError):
            server.create_account("alice", "x")


class TestGF16:
    def test_add_is_xor(self):
        assert GF16.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity_and_zero(self):
        assert GF16.mul(1, 0x1234) == 0x1234
        assert GF16.mul(0, 0x1234) == 0

    def test_inverse(self):
        for value in (1, 2, 0x1234, 0xFFFF):
            assert GF16.mul(value, GF16.inv(value)) == 1

    def test_inv_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            GF16.inv(0)

    def test_interpolation_roundtrip(self):
        coefficients = [5, 0x1111, 0xBEEF, 42]
        points = [(x, GF16.poly_eval(coefficients, x)) for x in (1, 7, 19, 300)]
        assert GF16.interpolate(points) == coefficients

    def test_interpolation_duplicate_x(self):
        with pytest.raises(ValueError):
            GF16.interpolate([(1, 2), (1, 3)])

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF),
                    min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_eval_interpolate_property(self, coefficients):
        xs = list(range(1, len(coefficients) + 1))
        points = [(x, GF16.poly_eval(coefficients, x)) for x in xs]
        recovered = GF16.interpolate(points)
        # Leading zeros collapse the degree; compare via evaluation.
        for x in (0, 11, 99, 30000):
            assert GF16.poly_eval(recovered, x) \
                == GF16.poly_eval(coefficients, x)


class TestFuzzyVault:
    @pytest.fixture(scope="class")
    def enrolled(self):
        master = synthesize_master("vault-f", np.random.default_rng(8))
        return master, minutiae_from_image(master.image)

    def test_crc16_known_vector(self):
        assert crc16(b"123456789") == 0x29B1

    def test_encode_minutia_within_16_bits(self):
        minutia = Minutia(row=100.0, col=50.0, direction=1.0, kind="ending")
        assert 0 <= encode_minutia(minutia) < (1 << 16)

    def test_lock_unlock_same_print(self, enrolled):
        master, minutiae = enrolled
        rng = np.random.default_rng(0)
        vault_builder = FuzzyVault(polynomial_degree=8, n_chaff=200)
        secret = b"vault-secret-123"
        vault = vault_builder.lock(minutiae, secret, rng)
        assert vault_builder.unlock(vault, minutiae, len(secret), rng) == secret

    def test_impostor_cannot_unlock(self, enrolled):
        _, minutiae = enrolled
        rng = np.random.default_rng(1)
        vault_builder = FuzzyVault(polynomial_degree=8, n_chaff=200)
        vault = vault_builder.lock(minutiae, b"secret-material!", rng)
        impostor = synthesize_master("vault-imp", np.random.default_rng(99))
        impostor_minutiae = minutiae_from_image(impostor.image)
        assert vault_builder.unlock(vault, impostor_minutiae, 16, rng) is None

    def test_vault_hides_genuine_points(self, enrolled):
        _, minutiae = enrolled
        rng = np.random.default_rng(2)
        vault_builder = FuzzyVault(polynomial_degree=8, n_chaff=150)
        vault = vault_builder.lock(minutiae, b"sixteen-byte-key", rng)
        assert len(vault) >= 150

    def test_secret_too_long(self, enrolled):
        _, minutiae = enrolled
        vault_builder = FuzzyVault(polynomial_degree=4)
        with pytest.raises(ValueError, match="capacity"):
            vault_builder.lock(minutiae, b"x" * 64, np.random.default_rng(0))

    def test_too_few_minutiae(self):
        vault_builder = FuzzyVault(polynomial_degree=8)
        few = [Minutia(10.0 * i, 10.0 * i, 0.1, "ending") for i in range(3)]
        with pytest.raises(ValueError, match="distinct minutiae"):
            vault_builder.lock(few, b"secret", np.random.default_rng(0))

    def test_helper_data_alignment_recovers_displaced_print(self, enrolled):
        master, minutiae = enrolled
        rng = np.random.default_rng(5)
        vault_builder = FuzzyVault(polynomial_degree=8, n_chaff=200)
        secret = b"vault-secret-123"
        vault, helper = vault_builder.lock_with_helper(minutiae, secret, rng)
        assert len(helper) == 5
        successes = 0
        for _ in range(6):
            probe = render_impression(master, CaptureCondition(
                rotation_deg=float(rng.uniform(-10, 10)),
                translation=(float(rng.uniform(-6, 6)),
                             float(rng.uniform(-6, 6))),
                noise=0.04), rng)
            query = minutiae_from_image(probe.image, probe.mask)
            if vault_builder.unlock_with_helper(vault, helper, query,
                                                len(secret), rng) == secret:
                successes += 1
        assert successes >= 4  # alignment restores most displaced presses

    def test_helper_data_does_not_admit_impostor(self, enrolled):
        _, minutiae = enrolled
        rng = np.random.default_rng(6)
        vault_builder = FuzzyVault(polynomial_degree=8, n_chaff=200)
        vault, helper = vault_builder.lock_with_helper(
            minutiae, b"secret-material!", rng)
        impostor = synthesize_master("vault-imp2", np.random.default_rng(55))
        impostor_minutiae = minutiae_from_image(impostor.image)
        assert vault_builder.unlock_with_helper(
            vault, helper, impostor_minutiae, 16, rng) is None

    def test_helper_requires_enough_minutiae(self):
        vault_builder = FuzzyVault(polynomial_degree=2)
        few = [Minutia(30.0 * i, 25.0 * i + 5, 0.3, "ending")
               for i in range(4)]
        with pytest.raises(ValueError, match="helper"):
            vault_builder.lock_with_helper(few, b"s",
                                           np.random.default_rng(0),
                                           n_helper=5)

    def test_displaced_print_often_fails(self, enrolled):
        """The vault has no alignment stage: realistic displacement hurts
        (the paper's FRR argument)."""
        master, minutiae = enrolled
        rng = np.random.default_rng(3)
        vault_builder = FuzzyVault(polynomial_degree=8, n_chaff=200)
        secret = b"vault-secret-123"
        vault = vault_builder.lock(minutiae, secret, rng)
        failures = 0
        trials = 8
        for _ in range(trials):
            probe = render_impression(master, CaptureCondition(
                rotation_deg=float(rng.uniform(-12, 12)),
                translation=(float(rng.uniform(-8, 8)),
                             float(rng.uniform(-8, 8))),
                noise=0.05), rng)
            query = minutiae_from_image(probe.image, probe.mask)
            if vault_builder.unlock(vault, query, len(secret), rng) != secret:
                failures += 1
        assert failures >= 1  # FRR clearly non-zero under displacement
