"""Touch-gesture implicit authentication baseline (paper ref [8])."""

import numpy as np
import pytest

from repro.baselines import TouchGestureAuthenticator, gesture_features
from repro.eval import equal_error_rate
from repro.touchgen import (
    SessionConfig,
    SessionGenerator,
    example_users,
    make_swipe,
    make_tap,
)


@pytest.fixture(scope="module")
def traces():
    return {
        user.user_id: SessionGenerator(user).generate(
            SessionConfig(n_interactions=250), seed=33).gestures
        for user in example_users()
    }


class TestFeatures:
    def test_tap_features(self):
        tap = make_tap(0.0, 10, 20, 0.6, 0.1, "f", speed_mm_s=5.0)
        features = gesture_features(tap)
        assert features[0] == pytest.approx(0.6)  # pressure
        assert features[3] == pytest.approx(0.0)  # extent: taps don't move

    def test_swipe_extent(self):
        swipe = make_swipe(0.0, (10, 80), (10, 50), duration_s=0.3,
                           pressure=0.5, finger_id="f")
        features = gesture_features(swipe)
        assert features[3] == pytest.approx(30.0, abs=1.0)
        assert features[4] == pytest.approx(100.0, rel=0.1)  # mm/s


class TestAuthenticator:
    def test_enroll_and_score(self, traces):
        auth = TouchGestureAuthenticator()
        user_id = list(traces)[0]
        auth.enroll(user_id, traces[user_id][:60])
        score = auth.score_gesture(user_id, traces[user_id][61])
        assert 0.0 < score <= 1.0

    def test_unenrolled_rejected(self):
        auth = TouchGestureAuthenticator()
        with pytest.raises(KeyError):
            auth.score_gesture("ghost", make_tap(0, 1, 1, 0.5, 0.1, "f"))

    def test_enrollment_needs_gestures(self):
        with pytest.raises(ValueError):
            TouchGestureAuthenticator().enroll("u", [])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TouchGestureAuthenticator(window=0)

    def test_genuine_scores_higher_on_average(self, traces):
        auth = TouchGestureAuthenticator()
        genuine, impostor = auth.evaluate(traces)
        assert genuine.mean() > impostor.mean() + 0.05

    def test_eer_in_behavioural_range(self, traces):
        """Behavioural auth works but is far weaker than fingerprints."""
        genuine, impostor = TouchGestureAuthenticator().evaluate(traces)
        eer, _ = equal_error_rate(genuine, impostor)
        assert 0.10 < eer < 0.48

    def test_windowing_improves_eer(self, traces):
        per_gesture = TouchGestureAuthenticator().evaluate(traces)
        windowed = TouchGestureAuthenticator().evaluate_windows(traces)
        eer_raw, _ = equal_error_rate(*per_gesture)
        eer_window, _ = equal_error_rate(*windowed)
        assert eer_window < eer_raw

    def test_observe_sliding_window(self, traces):
        auth = TouchGestureAuthenticator(window=5)
        user_id = list(traces)[0]
        auth.enroll(user_id, traces[user_id][:60])
        for gesture in traces[user_id][60:70]:
            window_score, accepted = auth.observe(user_id, gesture)
            assert 0.0 <= window_score <= 1.0
        auth.reset_window(user_id)
        score, _ = auth.observe(user_id, traces[user_id][70])
        assert score == pytest.approx(
            auth.score_gesture(user_id, traces[user_id][70]))

    def test_evaluate_needs_two_users(self, traces):
        single = {list(traces)[0]: traces[list(traces)[0]]}
        with pytest.raises(ValueError):
            TouchGestureAuthenticator().evaluate(single)
