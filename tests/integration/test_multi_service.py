"""One device, several web services: independent bindings and sessions."""

import numpy as np
import pytest

from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import (
    MobileDevice,
    UntrustedChannel,
    WebServer,
    login,
    register_device,
    session_request,
)

BUTTON_XY = (28.0, 80.0)
DOMAINS = ("www.bank.example", "www.mail.example", "www.social.example")


@pytest.fixture(scope="module")
def multi_world():
    ca = CertificateAuthority(rng=HmacDrbg(b"ca-multi"), key_bits=1024)
    master = synthesize_master("multi-alice", np.random.default_rng(5))
    template = enroll_master(master, np.random.default_rng(6))
    device = MobileDevice("multi-phone", b"multi-phone-seed", ca=ca)
    device.flock.enroll_local_user(template)
    servers = {}
    channel = UntrustedChannel()
    rng = np.random.default_rng(7)
    for index, domain in enumerate(DOMAINS):
        server = WebServer(domain, ca, f"srv-{index}".encode())
        server.create_account("alice", "pw")
        outcome = register_device(device, server, channel, "alice",
                                  BUTTON_XY, master, rng)
        assert outcome.success, (domain, outcome.reason)
        servers[domain] = server
    return device, servers, master


class TestMultiService:
    def test_three_independent_bindings(self, multi_world):
        device, servers, _ = multi_world
        assert device.flock.flash.domains() == sorted(DOMAINS)
        keys = {domain: device.flock.service_view(domain).public_key
                for domain in DOMAINS}
        assert len({(k.n, k.e) for k in keys.values()}) == 3  # distinct pairs

    def test_server_bindings_are_isolated(self, multi_world):
        """Bank's stored key verifies only the bank's service signatures."""
        device, servers, _ = multi_world
        bank_key = servers[DOMAINS[0]].account_key("alice")
        mail_signature = device.flock.sign_for_service(DOMAINS[1], b"m")
        assert not bank_key.verify(b"m", mail_signature)
        bank_signature = device.flock.sign_for_service(DOMAINS[0], b"m")
        assert bank_key.verify(b"m", bank_signature)

    def test_concurrent_sessions(self, multi_world):
        device, servers, master = multi_world
        rng = np.random.default_rng(8)
        channel = UntrustedChannel()
        sessions = {}
        for domain in DOMAINS:
            outcome = login(device, servers[domain], channel, "alice",
                            BUTTON_XY, master, rng)
            assert outcome.success, (domain, outcome.reason)
            sessions[domain] = outcome.session
        # Interleave requests across the three live sessions.
        for round_index in range(3):
            for domain in DOMAINS:
                result = session_request(device, servers[domain], channel,
                                         sessions[domain], risk=0.0, rng=rng)
                assert result.success, (domain, result.reason)
        for domain in DOMAINS:
            state = servers[domain].session(sessions[domain].session_id)
            assert state.request_count == 3
            device.flock.close_session(domain)

    def test_session_keys_do_not_cross_domains(self, multi_world):
        device, servers, master = multi_world
        rng = np.random.default_rng(9)
        channel = UntrustedChannel()
        outcome_a = login(device, servers[DOMAINS[0]], channel, "alice",
                          BUTTON_XY, master, rng)
        outcome_b = login(device, servers[DOMAINS[1]], channel, "alice",
                          BUTTON_XY, master, rng)
        assert outcome_a.success and outcome_b.success
        tag = device.flock.session_mac(DOMAINS[0], b"payload")
        assert not device.flock.verify_session_mac(DOMAINS[1], b"payload", tag)
        for domain in DOMAINS[:2]:
            device.flock.close_session(domain)

    def test_unbinding_one_leaves_others(self, multi_world):
        device, servers, master = multi_world
        device.flock.unbind_service(DOMAINS[2])
        assert not device.flock.flash.has_record(DOMAINS[2])
        assert device.flock.flash.has_record(DOMAINS[0])
        # Re-bind for other tests' sake.
        rng = np.random.default_rng(10)
        channel = UntrustedChannel()
        servers[DOMAINS[2]].reset_identity("alice", "pw")
        outcome = register_device(device, servers[DOMAINS[2]], channel,
                                  "alice", BUTTON_XY, master, rng)
        assert outcome.success
