"""Multi-finger enrollment: one user, several fingers, one identity."""

import numpy as np
import pytest

from repro.fingerprint import DEFAULT_PARTIAL_MODEL, enroll_master, synthesize_master
from repro.flock import FlockError
from repro.net import MobileDevice


@pytest.fixture(scope="module")
def fingers():
    return {
        "thumb": synthesize_master("alice-thumb", np.random.default_rng(5)),
        "index": synthesize_master("alice-index", np.random.default_rng(15)),
        "eve": synthesize_master("eve-thumb", np.random.default_rng(900)),
    }


@pytest.fixture()
def device(fingers):
    rng = np.random.default_rng(1)
    device = MobileDevice("multi-dev", b"multi-seed")
    device.flock.enroll_local_user(enroll_master(fingers["thumb"], rng))
    device.flock.enroll_additional_finger(enroll_master(fingers["index"], rng))
    return device


def _verify_rate(device, master, n=10):
    rng = np.random.default_rng(2)
    verified = 0
    for i in range(n):
        _, outcome = device.touch_at(28.0, 80.0, float(i), master, rng)
        verified += outcome.verified
    return verified / n


class TestMultiFinger:
    def test_enrolled_ids_listed(self, device):
        assert device.flock.enrolled_finger_ids == ["alice-thumb",
                                                    "alice-index"]

    def test_both_fingers_verify(self, device, fingers):
        assert _verify_rate(device, fingers["thumb"]) >= 0.5
        assert _verify_rate(device, fingers["index"]) >= 0.5

    def test_impostor_still_rejected(self, device, fingers):
        assert _verify_rate(device, fingers["eve"], n=12) == 0.0

    def test_duplicate_finger_rejected(self, device, fingers):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="already enrolled"):
            device.flock.enroll_additional_finger(
                enroll_master(fingers["thumb"], rng))

    def test_additional_before_primary_rejected(self, fingers):
        device = MobileDevice("multi-dev2", b"multi-seed2")
        rng = np.random.default_rng(4)
        with pytest.raises(FlockError, match="primary finger first"):
            device.flock.enroll_additional_finger(
                enroll_master(fingers["index"], rng))

    def test_modeled_mode_rejects_additional(self, fingers):
        device = MobileDevice("multi-dev3", b"multi-seed3",
                              processor_mode="modeled")
        rng = np.random.default_rng(5)
        device.flock.enroll_local_user(enroll_master(fingers["thumb"], rng),
                                       score_model=DEFAULT_PARTIAL_MODEL)
        with pytest.raises(FlockError, match="image-mode"):
            device.flock.enroll_additional_finger(
                enroll_master(fingers["index"], rng))

    def test_unenrolled_device_lists_nothing(self):
        device = MobileDevice("multi-dev4", b"multi-seed4")
        assert device.flock.enrolled_finger_ids == []
