"""Failure injection: drop every message of every protocol, one at a time.

Each protocol run must fail cleanly ("message-dropped") when any of its
messages is lost, and must leave no half-open state behind: no dangling
session keys in FLock, no phantom sessions on the server, and a retried
run must succeed.
"""

import numpy as np
import pytest

from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import (
    MobileDevice,
    UntrustedChannel,
    WebServer,
    login,
    register_device,
    session_request,
)

BUTTON_XY = (28.0, 80.0)


@pytest.fixture(scope="module")
def world():
    ca = CertificateAuthority(rng=HmacDrbg(b"ca-drop"), key_bits=1024)
    master = synthesize_master("drop-alice", np.random.default_rng(5))
    template = enroll_master(master, np.random.default_rng(6))
    device = MobileDevice("drop-dev", b"drop-seed", ca=ca)
    device.flock.enroll_local_user(template)
    server = WebServer("www.drop.example", ca, b"drop-server")
    server.create_account("alice", "pw")
    return ca, device, server, master


def _drop_nth(n):
    """A channel that drops its n-th carried message (0-based)."""
    state = {"count": -1}

    def hook(envelope, direction):
        state["count"] += 1
        return state["count"] == n

    return UntrustedChannel(drop_hook=hook)


class TestRegistrationDrops:
    @pytest.mark.parametrize("drop_index", [0, 1, 2])
    def test_any_drop_fails_cleanly_and_retry_works(self, world, drop_index):
        ca, device, server, master = world
        rng = np.random.default_rng(10 + drop_index)
        channel = _drop_nth(drop_index)
        outcome = register_device(device, server, channel, "alice",
                                  BUTTON_XY, master, rng)
        assert outcome.reason == "message-dropped"
        assert not outcome.success

        if drop_index <= 1:
            # The binding never reached the server: nothing bound.
            assert server.account_key("alice") is None
            # Pending state must not leak inside FLock.
            assert "www.drop.example" not in device.flock._pending_bindings
            # A clean retry succeeds (local record may persist from the
            # completed step-2; unbind to model a fresh attempt).
            if device.flock.flash.has_record(server.domain):
                device.flock.unbind_service(server.domain)
            retry = register_device(device, server, _drop_nth(999), "alice",
                                    BUTTON_XY, master, rng)
            assert retry.success, retry.reason
            # Reset for other parametrizations.
            server.reset_identity("alice", "pw")
            device.flock.unbind_service(server.domain)
        else:
            # The ack was dropped: the server *did* bind (step 5 ran); a
            # real client re-fetches state. Verify the binding is usable,
            # then reset.
            assert server.account_key("alice") is not None
            server.reset_identity("alice", "pw")
            device.flock.unbind_service(server.domain)


class TestLoginDrops:
    @pytest.fixture()
    def bound(self, world):
        ca, device, server, master = world
        rng = np.random.default_rng(30)
        if not device.flock.flash.has_record(server.domain):
            if server.account_key("alice") is not None:
                server.reset_identity("alice", "pw")
            outcome = register_device(device, server, UntrustedChannel(),
                                      "alice", BUTTON_XY, master, rng)
            assert outcome.success, outcome.reason
        elif server.account_key("alice") is None:
            device.flock.unbind_service(server.domain)
            outcome = register_device(device, server, UntrustedChannel(),
                                      "alice", BUTTON_XY, master, rng)
            assert outcome.success, outcome.reason
        return device, server, master

    @pytest.mark.parametrize("drop_index", [0, 1, 2])
    def test_any_drop_fails_cleanly(self, bound, drop_index):
        device, server, master = bound
        rng = np.random.default_rng(40 + drop_index)
        sessions_before = server.active_sessions
        outcome = login(device, server, _drop_nth(drop_index), "alice",
                        BUTTON_XY, master, rng)
        assert outcome.reason == "message-dropped"
        # No dangling session key on the device.
        assert not device.flock.has_session(server.domain)
        if drop_index <= 1:
            # Submission never reached the server: no session there either.
            assert server.active_sessions == sessions_before

    def test_retry_after_drop_succeeds(self, bound):
        device, server, master = bound
        rng = np.random.default_rng(50)
        failed = login(device, server, _drop_nth(1), "alice", BUTTON_XY,
                       master, rng)
        assert not failed.success
        retry = login(device, server, UntrustedChannel(), "alice",
                      BUTTON_XY, master, rng)
        assert retry.success, retry.reason
        device.flock.close_session(server.domain)


class TestRequestDrops:
    def test_dropped_request_then_stale_nonce_recovery(self, world):
        """A dropped request leaves the session alive; the server's nonce
        is still outstanding, so the client's retry with the same nonce
        succeeds — exactly how a lost-packet retry should behave."""
        ca, device, server, master = world
        rng = np.random.default_rng(60)
        if not device.flock.flash.has_record(server.domain):
            if server.account_key("alice") is not None:
                server.reset_identity("alice", "pw")
            assert register_device(device, server, UntrustedChannel(),
                                   "alice", BUTTON_XY, master, rng).success
        outcome = login(device, server, UntrustedChannel(), "alice",
                        BUTTON_XY, master, rng)
        assert outcome.success, outcome.reason
        session = outcome.session

        dropped = session_request(device, server, _drop_nth(0), session,
                                  risk=0.0, rng=rng)
        assert dropped.reason == "message-dropped"
        assert server.session(session.session_id) is not None

        retry = session_request(device, server, UntrustedChannel(), session,
                                risk=0.0, rng=rng)
        assert retry.success, retry.reason
        device.flock.close_session(server.domain)
