"""Property-based protocol fuzzing: ANY in-flight mutation must be rejected.

Every field of every TRUST envelope is covered by a MAC or signature, so an
on-path adversary who flips, replaces, or retypes any field must cause a
verification failure at the receiving end.  Hypothesis drives the mutation
space; the deployment is shared (fresh channel per example).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.eval import LOGIN_BUTTON_XY, standard_deployment
from repro.net import UntrustedChannel, login, session_request


@pytest.fixture(scope="module")
def world():
    return standard_deployment(seed=55)


def _mutate_bytes(value: bytes, index: int) -> bytes:
    if not value:
        return b"\x01"
    index %= len(value)
    return value[:index] + bytes([value[index] ^ 0x01]) + value[index + 1:]


def _mutate(value, index):
    if isinstance(value, bytes):
        return _mutate_bytes(value, index)
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return value + 1
    if isinstance(value, str):
        return value + "x"
    raise AssertionError(f"unexpected field type {type(value)}")


# The fields of the two post-login message types, by direction.
REQUEST_FIELDS = ("account", "session", "nonce", "frame_hash", "risk", "mac")
LOGIN_FIELDS = ("domain", "account", "nonce", "sealed_session_key",
                "frame_hash", "risk", "signature", "mac")


class TestRequestTampering:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(field=st.sampled_from(REQUEST_FIELDS),
           byte_index=st.integers(min_value=0, max_value=63))
    def test_any_request_field_mutation_rejected(self, world, field,
                                                 byte_index):
        rng = np.random.default_rng(byte_index)

        def tamper(envelope, direction):
            if envelope.msg_type == "page-request" and field in envelope.fields:
                envelope.fields[field] = _mutate(envelope.fields[field],
                                                 byte_index)
            return envelope

        channel = UntrustedChannel()
        outcome = login(world.device, world.server, channel, world.account,
                        LOGIN_BUTTON_XY, world.user_master, rng)
        assert outcome.success, outcome.reason
        try:
            tampering = UntrustedChannel(tamper_hook=tamper)
            result = session_request(world.device, world.server, tampering,
                                     outcome.session, risk=0.0, rng=rng)
            assert not result.success
            assert result.reason in ("bad-mac", "bad-nonce",
                                     "unknown-session", "wrong-account",
                                     "malformed-message")
        finally:
            world.device.flock.close_session(world.server.domain)


class TestLoginTampering:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(field=st.sampled_from(LOGIN_FIELDS),
           byte_index=st.integers(min_value=0, max_value=63))
    def test_any_login_field_mutation_rejected(self, world, field,
                                               byte_index):
        rng = np.random.default_rng(1000 + byte_index)

        def tamper(envelope, direction):
            if envelope.msg_type == "login-submit" and field in envelope.fields:
                envelope.fields[field] = _mutate(envelope.fields[field],
                                                 byte_index)
            return envelope

        try:
            channel = UntrustedChannel(tamper_hook=tamper)
            outcome = login(world.device, world.server, channel,
                            world.account, LOGIN_BUTTON_XY,
                            world.user_master, rng)
            assert not outcome.success
            assert outcome.reason in (
                "bad-mac", "bad-nonce", "bad-session-key", "wrong-domain",
                "unknown-account", "malformed-message", "risk-too-high",
                "bad-device-signature")
        finally:
            world.device.flock.close_session(world.server.domain)


class TestServerResponseTampering:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(field=st.sampled_from(("page", "nonce", "session", "mac")),
           byte_index=st.integers(min_value=0, max_value=63))
    def test_tampered_content_page_rejected_by_device(self, world, field,
                                                      byte_index):
        """The device verifies server MACs too: tampering the *downlink*
        (e.g. swapping the page a user is about to act on) is caught."""
        rng = np.random.default_rng(2000 + byte_index)

        def tamper(envelope, direction):
            if (direction == "to-device"
                    and envelope.msg_type == "content-page"
                    and field in envelope.fields):
                envelope.fields[field] = _mutate(envelope.fields[field],
                                                 byte_index)
            return envelope

        try:
            channel = UntrustedChannel(tamper_hook=tamper)
            outcome = login(world.device, world.server, channel,
                            world.account, LOGIN_BUTTON_XY,
                            world.user_master, rng)
            assert not outcome.success
            assert outcome.reason == "bad-content-mac"
        finally:
            world.device.flock.close_session(world.server.domain)


REGISTRATION_SUBMIT_FIELDS = ("domain", "account", "nonce",
                              "user_public_key", "frame_hash",
                              "device_cert", "mac")
REGISTRATION_PAGE_FIELDS = ("domain", "nonce", "page", "server_cert", "mac")


class TestRegistrationTampering:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(field=st.sampled_from(REGISTRATION_SUBMIT_FIELDS),
           byte_index=st.integers(min_value=0, max_value=63))
    def test_any_submission_mutation_rejected(self, field, byte_index):
        from repro.net import WebServer, register_device

        world = standard_deployment(seed=55)
        server = WebServer(f"www.fuzz-{field}-{byte_index % 4}.example",
                           world.ca, b"fuzz-server")
        server.create_account("alice", "pw")
        rng = np.random.default_rng(3000 + byte_index)

        def tamper(envelope, direction):
            if (envelope.msg_type == "registration-submit"
                    and field in envelope.fields):
                envelope.fields[field] = _mutate(envelope.fields[field],
                                                 byte_index)
            return envelope

        channel = UntrustedChannel(tamper_hook=tamper)
        try:
            outcome = register_device(world.device, server, channel, "alice",
                                      LOGIN_BUTTON_XY, world.user_master,
                                      rng)
        finally:
            world.device.flock._pending_bindings.pop(server.domain, None)
            if world.device.flock.flash.has_record(server.domain):
                world.device.flock.unbind_service(server.domain)
        assert not outcome.success
        # Either a verification failure, or (for domain mutations) the
        # message landed at the wrong service entirely.
        assert outcome.reason in (
            "bad-mac", "bad-nonce", "bad-device-cert", "wrong-domain",
            "unknown-account", "malformed-message",
            "fingerprint-not-verified")
        # The attacker's mutation never produced a key binding.
        assert server.account_key("alice") is None

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(field=st.sampled_from(REGISTRATION_PAGE_FIELDS),
           byte_index=st.integers(min_value=0, max_value=63))
    def test_any_page_mutation_rejected_by_device(self, field, byte_index):
        from repro.net import WebServer, register_device

        world = standard_deployment(seed=55)
        server = WebServer(f"www.fuzzp-{field}-{byte_index % 4}.example",
                           world.ca, b"fuzzp-server")
        server.create_account("alice", "pw")
        rng = np.random.default_rng(4000 + byte_index)

        def tamper(envelope, direction):
            if (envelope.msg_type == "registration-page"
                    and field in envelope.fields):
                envelope.fields[field] = _mutate(envelope.fields[field],
                                                 byte_index)
            return envelope

        channel = UntrustedChannel(tamper_hook=tamper)
        try:
            outcome = register_device(world.device, server, channel, "alice",
                                      LOGIN_BUTTON_XY, world.user_master,
                                      rng)
        finally:
            world.device.flock._pending_bindings.pop(server.domain, None)
            if world.device.flock.flash.has_record(server.domain):
                world.device.flock.unbind_service(server.domain)
        # Mutating the *page* body changes the displayed frame but not the
        # protocol's integrity... except the MAC covers it, so the device
        # must reject before touching.
        assert not outcome.success
        assert ("device-rejected" in outcome.reason
                or outcome.reason in ("bad-server-mac", "bad-nonce",
                                      "unknown-account", "bad-mac",
                                      "fingerprint-not-verified"))
        assert server.account_key("alice") is None
