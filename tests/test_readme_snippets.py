"""The README's code examples must actually work."""

import numpy as np


class TestReadmeQuickstart:
    def test_sixty_second_api_taste(self):
        """The '60-second taste of the API' block, verbatim semantics."""
        from repro.eval import standard_deployment, LOGIN_BUTTON_XY
        from repro.net import login, session_request

        world = standard_deployment()
        rng = np.random.default_rng(0)

        outcome = login(world.device, world.server, world.channel,
                        world.account, LOGIN_BUTTON_XY, world.user_master,
                        rng)
        assert outcome.success

        result = session_request(world.device, world.server, world.channel,
                                 outcome.session, risk=0.0, rng=rng,
                                 touch_xy=LOGIN_BUTTON_XY,
                                 master=world.user_master)
        assert result.success
        world.device.flock.close_session(world.server.domain)

    def test_package_docstring_quickstart(self):
        """The repro.__doc__ quickstart block."""
        import repro
        assert "standard_deployment" in repro.__doc__
