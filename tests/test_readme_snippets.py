"""The README's code examples must actually work."""

import numpy as np


class TestReadmeQuickstart:
    def test_sixty_second_api_taste(self):
        """The '60-second taste of the API' block, verbatim semantics."""
        from repro.eval import standard_deployment, LOGIN_BUTTON_XY
        from repro.net import TrustClient

        world = standard_deployment()
        rng = np.random.default_rng(0)
        client = TrustClient(world.device, world.server, world.channel)

        outcome = client.login(world.account, LOGIN_BUTTON_XY,
                               world.user_master, rng)
        assert outcome.success

        result = client.request(outcome.session, risk=0.0, rng=rng,
                                touch_xy=LOGIN_BUTTON_XY,
                                master=world.user_master)
        assert result.success
        world.device.flock.close_session(world.server.domain)

    def test_fleet_load_block(self):
        """The 'Fleet load simulation' scripting block, scaled down."""
        from repro.runtime import FleetConfig, FleetSimulation

        result = FleetSimulation(
            FleetConfig(n_devices=12, n_shards=4, seed=3,
                        requests_per_device=1, ramp_s=5.0)).run()
        assert "TRUST fleet load: 12 devices over 4 shards" in result.summary
        assert result.unexpected_rejections == {}

    def test_cross_layer_tracing_block(self):
        """The 'Cross-layer tracing' scripting block, with a real scenario."""
        from repro.obs import Instrumentation, render_trace_text
        from repro.runtime import FleetConfig, FleetSimulation

        obs = Instrumentation.live()
        FleetSimulation(FleetConfig(n_devices=2, n_shards=1, seed=3,
                                    requests_per_device=1), obs=obs).run()
        text = render_trace_text(obs.tracer)
        for name in ("server.dispatch", "flock.match", "sensor.capture"):
            assert name in text

    def test_package_docstring_quickstart(self):
        """The repro.__doc__ quickstart block."""
        import repro
        assert "standard_deployment" in repro.__doc__
