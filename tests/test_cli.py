"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_sensors_command(self, capsys):
        assert main(["sensors"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "160.0 ms" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "--requests", "2"]) == 0
        out = capsys.readouterr().out
        assert "login: ok" in out
        assert "request 2: ok" in out

    def test_audit_command(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "SUSPICIOUS" in out

    def test_placement_command(self, capsys):
        assert main(["placement", "--touches", "100", "--sensors", "2"]) == 0
        out = capsys.readouterr().out
        assert "capture rate" in out

    def test_load_command(self, capsys):
        assert main(["--seed", "11", "load", "--devices", "24",
                     "--shards", "4", "--requests", "2"]) == 0
        out = capsys.readouterr().out
        assert "24 devices over 4 shards" in out
        assert "fleet overview" in out
        assert "per-shard balance" in out
        assert "FAIL" not in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
