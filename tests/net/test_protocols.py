"""End-to-end Fig. 9 / Fig. 10 protocol runs, reset and transfer."""

import numpy as np
import pytest

from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import (
    MobileDevice,
    ProtocolError,
    TransferError,
    UntrustedChannel,
    WebServer,
    login,
    register_device,
    reset_identity,
    session_request,
    transfer_identity,
)
from .conftest import BUTTON_XY


class TestRegistration:
    def test_registration_binds_key(self, ca, alice_master):
        template = enroll_master(alice_master, np.random.default_rng(6))
        device = MobileDevice("dev-r1", b"seed-r1", ca=ca)
        device.flock.enroll_local_user(template)
        server = WebServer("www.reg.com", ca, b"server-r1")
        server.create_account("alice", "pw")
        channel = UntrustedChannel()
        outcome = register_device(device, server, channel, "alice",
                                  BUTTON_XY, alice_master,
                                  np.random.default_rng(0))
        assert outcome.success
        bound = server.account_key("alice")
        assert bound == device.flock.service_view("www.reg.com").public_key
        assert outcome.messages == 3
        assert outcome.frame_hash is not None
        # Frame hash was logged for audit.
        assert server.frame_audit_log[-1][0] == "alice"

    def test_registration_rejects_unknown_account(self, ca, alice_master):
        template = enroll_master(alice_master, np.random.default_rng(6))
        device = MobileDevice("dev-r2", b"seed-r2", ca=ca)
        device.flock.enroll_local_user(template)
        server = WebServer("www.reg2.com", ca, b"server-r2")
        channel = UntrustedChannel()
        outcome = register_device(device, server, channel, "nobody",
                                  BUTTON_XY, alice_master,
                                  np.random.default_rng(0))
        assert not outcome.success
        assert outcome.reason == "unknown-account"

    def test_impostor_finger_cannot_register(self, ca, alice_master,
                                             eve_master):
        template = enroll_master(alice_master, np.random.default_rng(6))
        device = MobileDevice("dev-r3", b"seed-r3", ca=ca)
        device.flock.enroll_local_user(template)
        server = WebServer("www.reg3.com", ca, b"server-r3")
        server.create_account("alice", "pw")
        channel = UntrustedChannel()
        outcome = register_device(device, server, channel, "alice",
                                  BUTTON_XY, eve_master,
                                  np.random.default_rng(0))
        assert not outcome.success
        assert outcome.reason == "fingerprint-not-verified"
        assert server.account_key("alice") is None

    def test_registration_nonce_single_use(self, ca, alice_master):
        """Replaying a recorded registration submission must fail."""
        template = enroll_master(alice_master, np.random.default_rng(6))
        device = MobileDevice("dev-r4", b"seed-r4", ca=ca)
        device.flock.enroll_local_user(template)
        server = WebServer("www.reg4.com", ca, b"server-r4")
        server.create_account("alice", "pw")
        channel = UntrustedChannel()
        outcome = register_device(device, server, channel, "alice",
                                  BUTTON_XY, alice_master,
                                  np.random.default_rng(0))
        assert outcome.success
        recorded = channel.recorded("registration-submit")[0].envelope
        with pytest.raises(ProtocolError) as exc_info:
            server.dispatch(recorded)
        assert exc_info.value.reason in ("already-bound", "bad-nonce")


class TestContinuousAuth:
    def test_login_and_requests(self, deployment, channel, alice_master):
        device, server = deployment
        rng = np.random.default_rng(20)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success, outcome.reason
        session = outcome.session
        for i in range(5):
            result = session_request(device, server, channel, session,
                                     risk=0.05, rng=rng,
                                     touch_xy=BUTTON_XY, master=alice_master,
                                     time_s=100.0 + i)
            assert result.success, result.reason
        state = server.session(session.session_id)
        assert state.request_count == 5
        assert len(state.risk_reports) == 6  # login + 5 requests
        device.flock.close_session(server.domain)

    def test_fresh_nonce_per_request(self, deployment, channel, alice_master):
        device, server = deployment
        rng = np.random.default_rng(21)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        session = outcome.session
        nonces = {bytes(session.next_nonce)}
        for i in range(4):
            session_request(device, server, channel, session, risk=0.0,
                            rng=rng, time_s=200.0 + i)
            nonces.add(bytes(session.next_nonce))
        assert len(nonces) == 5
        device.flock.close_session(server.domain)

    def test_high_risk_terminates_session(self, deployment, channel,
                                          alice_master):
        device, server = deployment
        rng = np.random.default_rng(22)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        session = outcome.session
        result = session_request(device, server, channel, session,
                                 risk=0.9, rng=rng)
        assert not result.success
        assert result.reason == "risk-too-high"
        assert server.session(session.session_id) is None
        # Device-side session key was destroyed too.
        assert not device.flock.has_session(server.domain)

    def test_login_with_high_risk_rejected(self, deployment, channel,
                                           alice_master):
        device, server = deployment
        rng = np.random.default_rng(23)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng, risk=0.95)
        assert not outcome.success
        assert outcome.reason == "risk-too-high"
        assert not device.flock.has_session(server.domain)

    def test_impostor_cannot_login(self, deployment, channel, eve_master):
        device, server = deployment
        rng = np.random.default_rng(24)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        eve_master, rng)
        assert not outcome.success
        assert outcome.reason == "fingerprint-not-verified"

    def test_session_crypto_cost_accounted(self, deployment, channel,
                                           alice_master):
        device, server = deployment
        rng = np.random.default_rng(25)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        assert outcome.crypto_time_s > 0
        result = session_request(device, server, channel, outcome.session,
                                 risk=0.0, rng=rng)
        # Post-login requests use only symmetric crypto: much cheaper.
        assert result.crypto_time_s < outcome.crypto_time_s
        device.flock.close_session(server.domain)


class TestResetAndTransfer:
    @pytest.fixture()
    def fresh_deployment(self, ca, alice_master):
        template = enroll_master(alice_master, np.random.default_rng(6))
        device = MobileDevice("dev-t1", b"seed-t1", ca=ca)
        device.flock.enroll_local_user(template)
        server = WebServer("www.t.com", ca, b"server-t1")
        server.create_account("alice", "correct-password")
        channel = UntrustedChannel()
        outcome = register_device(device, server, channel, "alice",
                                  BUTTON_XY, alice_master,
                                  np.random.default_rng(0))
        assert outcome.success
        return device, server, channel

    def test_reset_then_rebind(self, fresh_deployment, ca, alice_master):
        device, server, channel = fresh_deployment
        assert reset_identity(server, "alice", "correct-password")
        assert server.account_key("alice") is None
        # Old device's binding is dead: login fails server-side.
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, np.random.default_rng(1))
        assert not outcome.success
        # Re-register from a new device.
        template = enroll_master(alice_master, np.random.default_rng(6))
        new_device = MobileDevice("dev-t2", b"seed-t2", ca=ca)
        new_device.flock.enroll_local_user(template)
        outcome = register_device(new_device, server, channel, "alice",
                                  BUTTON_XY, alice_master,
                                  np.random.default_rng(2))
        assert outcome.success

    def test_reset_wrong_password(self, fresh_deployment):
        _, server, _ = fresh_deployment
        with pytest.raises(ProtocolError, match="bad-password"):
            reset_identity(server, "alice", "wrong")
        assert server.account_key("alice") is not None

    def test_transfer_preserves_login(self, fresh_deployment, ca,
                                      alice_master):
        device, server, channel = fresh_deployment
        new_device = MobileDevice("dev-t3", b"seed-t3", ca=ca)
        rng = np.random.default_rng(3)
        domains = transfer_identity(device, new_device, BUTTON_XY,
                                    alice_master, rng)
        assert domains == ["www.t.com"]
        outcome = login(new_device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success, outcome.reason
        new_device.flock.close_session(server.domain)

    def test_transfer_blocked_for_impostor(self, fresh_deployment, ca,
                                           eve_master):
        device, _, _ = fresh_deployment
        new_device = MobileDevice("dev-t4", b"seed-t4", ca=ca)
        with pytest.raises(TransferError):
            transfer_identity(device, new_device, BUTTON_XY, eve_master,
                              np.random.default_rng(4))
