"""Server-issued re-authentication challenges + FLock attestations."""

import numpy as np
import pytest

from repro.crypto import hmac_sha256
from repro.flock import FlockError
from repro.net import (
    Envelope,
    ProtocolError,
    UntrustedChannel,
    answer_challenge,
    login,
    session_request,
)
from .conftest import BUTTON_XY


@pytest.fixture()
def live_session(deployment, alice_master):
    device, server = deployment
    channel = UntrustedChannel()
    rng = np.random.default_rng(60)
    outcome = login(device, server, channel, "alice", BUTTON_XY,
                    alice_master, rng)
    assert outcome.success, outcome.reason
    device.flock._pending_challenges.pop(server.domain, None)
    yield device, server, channel, outcome.session, rng
    device.flock._pending_challenges.pop(server.domain, None)
    device.flock.close_session(server.domain)


class TestChallengeFlow:
    def test_elevated_risk_triggers_challenge(self, live_session):
        device, server, channel, session, rng = live_session
        result = session_request(device, server, channel, session,
                                 risk=0.6, rng=rng)
        assert not result.success
        assert result.reason == "challenge-required"
        assert session.challenge_nonce is not None
        state = server.session(session.session_id)
        assert state.challenges_issued == 1
        assert state.pending_challenge is not None

    def test_low_risk_not_challenged(self, live_session):
        device, server, channel, session, rng = live_session
        result = session_request(device, server, channel, session,
                                 risk=0.2, rng=rng)
        assert result.success

    def test_genuine_user_passes_challenge(self, live_session, alice_master):
        device, server, channel, session, rng = live_session
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        result = answer_challenge(device, server, channel, session,
                                  BUTTON_XY, alice_master, rng)
        assert result.success, result.reason
        assert session.challenge_nonce is None
        # Session resumes normally.
        follow_up = session_request(device, server, channel, session,
                                    risk=0.1, rng=rng)
        assert follow_up.success
        state = server.session(session.session_id)
        assert state.challenges_passed == 1

    def test_impostor_cannot_pass_challenge(self, live_session, eve_master):
        device, server, channel, session, rng = live_session
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        result = answer_challenge(device, server, channel, session,
                                  BUTTON_XY, eve_master, rng)
        assert not result.success
        assert result.reason == "fingerprint-not-verified"
        # Content stays withheld: the next request is challenged again.
        frozen = session_request(device, server, channel, session,
                                 risk=0.6, rng=rng)
        assert frozen.reason == "challenge-required"

    def test_challenge_without_pending_rejected(self, live_session,
                                                alice_master):
        device, server, channel, session, rng = live_session
        result = answer_challenge(device, server, channel, session,
                                  BUTTON_XY, alice_master, rng)
        assert result.reason == "no-challenge-pending"

    def test_forged_attestation_rejected(self, live_session, alice_master):
        """Malware holding the session-MAC oracle still cannot attest."""
        device, server, channel, session, rng = live_session
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        forged = Envelope("challenge-response", {
            "account": session.account,
            "session": session.session_id,
            "nonce": session.next_nonce,
            "attestation": hmac_sha256(b"guess" * 7, b"flock-attest:x"),
        })
        forged.set_mac(device.flock.session_mac(session.domain,
                                                forged.signed_bytes()))
        with pytest.raises(ProtocolError) as exc_info:
            server.dispatch(forged)
        assert exc_info.value.reason == "bad-attestation"


class TestAttestationBoundary:
    def test_session_mac_refuses_attest_prefix(self, live_session):
        """The generic MAC oracle cannot mint attestations."""
        device, server, _, _, _ = live_session
        with pytest.raises(FlockError, match="attest"):
            device.flock.session_mac(server.domain,
                                     b"flock-attest:forged-nonce")

    def test_attest_requires_fresh_verified_touch(self, live_session):
        device, server, _, _, _ = live_session
        device.flock.begin_challenge(server.domain, b"nonce-xyz")
        with pytest.raises(FlockError, match="verified fingerprint"):
            device.flock.attest_challenge(server.domain)

    def test_attest_without_challenge(self, live_session):
        device, server, _, _, _ = live_session
        with pytest.raises(FlockError, match="no pending challenge"):
            device.flock.attest_challenge(server.domain)

    def test_attest_consumes_challenge(self, live_session, alice_master):
        device, server, _, _, rng = live_session
        device.flock.begin_challenge(server.domain, b"nonce-abc")
        verified = False
        for attempt in range(6):
            _, outcome = device.touch_at(BUTTON_XY[0], BUTTON_XY[1],
                                         float(attempt), alice_master, rng)
            if outcome.verified:
                verified = True
                break
        assert verified
        attestation = device.flock.attest_challenge(server.domain)
        assert len(attestation) == 32
        with pytest.raises(FlockError, match="no pending challenge"):
            device.flock.attest_challenge(server.domain)
