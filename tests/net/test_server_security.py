"""Server-side verification: nonces, MACs, sessions, audit (section IV-B)."""

import numpy as np
import pytest

from repro.crypto import hmac_sha256
from repro.flock import Frame, FrameHashEngine
from repro.net import (
    Envelope,
    ProtocolError,
    UntrustedChannel,
    login,
    session_request,
)
from .conftest import BUTTON_XY


class TestServerVerification:
    def test_tampered_login_risk_detected(self, deployment, channel,
                                          alice_master):
        """An on-path attacker lowering the reported risk breaks the MAC."""
        device, server = deployment

        def tamper(envelope, direction):
            if envelope.msg_type == "login-submit":
                envelope.fields["risk"] = 0.0
            return envelope

        tampering = UntrustedChannel(tamper_hook=tamper)
        outcome = login(device, server, tampering, "alice", BUTTON_XY,
                        alice_master, np.random.default_rng(0), risk=0.4)
        assert not outcome.success
        assert outcome.reason == "bad-mac"
        assert server.rejections["bad-mac"] >= 1

    def test_tampered_request_frame_hash_detected(self, deployment, channel,
                                                  alice_master):
        device, server = deployment
        rng = np.random.default_rng(1)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success

        def tamper(envelope, direction):
            if envelope.msg_type == "page-request":
                envelope.fields["frame_hash"] = b"\x00" * 32
            return envelope

        tampering = UntrustedChannel(tamper_hook=tamper)
        result = session_request(device, server, tampering, outcome.session,
                                 risk=0.0, rng=rng)
        assert not result.success
        assert result.reason == "bad-mac"
        device.flock.close_session(server.domain)

    def test_forged_request_without_session_key_fails(self, deployment,
                                                      channel, alice_master):
        """Malware knows account/session/nonce but not the session key."""
        device, server = deployment
        rng = np.random.default_rng(2)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        session = outcome.session
        forged = Envelope("page-request", {
            "account": session.account,
            "session": session.session_id,
            "nonce": session.next_nonce,
            "frame_hash": b"\x11" * 32,
            "risk": 0.0,
        })
        forged.set_mac(hmac_sha256(b"guessed-key" * 3, forged.signed_bytes()))
        with pytest.raises(ProtocolError) as exc_info:
            server.dispatch(forged)
        assert exc_info.value.reason == "bad-mac"
        device.flock.close_session(server.domain)

    def test_replayed_request_rejected(self, deployment, channel,
                                       alice_master):
        device, server = deployment
        rng = np.random.default_rng(3)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        result = session_request(device, server, channel, outcome.session,
                                 risk=0.0, rng=rng)
        assert result.success
        replayed = channel.recorded("page-request")[-1].envelope
        with pytest.raises(ProtocolError) as exc_info:
            server.dispatch(replayed)
        assert exc_info.value.reason == "bad-nonce"
        device.flock.close_session(server.domain)

    def test_unknown_session_rejected(self, deployment):
        _, server = deployment
        bogus = Envelope("page-request", {
            "account": "alice", "session": "nope",
            "nonce": b"\x00" * 16, "frame_hash": b"\x00" * 32, "risk": 0.0,
        })
        bogus.set_mac(b"\x00" * 32)
        with pytest.raises(ProtocolError, match="unknown-session"):
            server.dispatch(bogus)

    def test_duplicate_account_creation(self, deployment):
        _, server = deployment
        with pytest.raises(ValueError):
            server.create_account("alice", "x")


class TestFrameHashAudit:
    def test_honest_frames_pass_audit(self, deployment, channel,
                                      alice_master):
        device, server = deployment
        rng = np.random.default_rng(4)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        for i in range(3):
            session_request(device, server, channel, outcome.session,
                            risk=0.0, rng=rng)
        # The server enumerates the finite reachable-view hash set of the
        # pages it served and checks the logged hashes against it.
        engine = FrameHashEngine()
        valid = set()
        for page in server.pages.values():
            for view in Frame(page).reachable_views(max_scroll_px=256):
                valid.add(engine.hash_frame(view))
        # Content pages carry a per-request suffix; include those.
        for n in range(1, 10):
            page = server.pages["content"] + f" request #{n}".encode()
            for view in Frame(page).reachable_views(max_scroll_px=256):
                valid.add(engine.hash_frame(view))
        matching, total = server.audit_frame_hashes("alice", valid)
        assert total >= 4
        assert matching == total  # honest browser: every frame verifies
        device.flock.close_session(server.domain)
