"""Failure paths seeded from ``repro.analysis.verify`` abstract traces.

Each test re-enacts, against the real protocol stack, an adversary or
failure trace the model checker explores symbolically: replayed
challenge answers (PV403), out-of-order downlink delivery (the
``adv-channel`` stale-challenge reorder), wrong-password resets,
interrupted transfers, and logins from a retired device (PV404/PV405).
"""

import numpy as np
import pytest

from repro.fingerprint import enroll_master
from repro.flock import FlockError
from repro.net import (
    MobileDevice,
    ProtocolError,
    TransferError,
    UntrustedChannel,
    WebServer,
    answer_challenge,
    login,
    register_device,
    reset_identity,
    session_request,
    transfer_identity,
)
from .conftest import BUTTON_XY


@pytest.fixture()
def fresh_world(ca, alice_master):
    """A private device/server pair for state-destroying tests."""
    device = MobileDevice("dev-rtf", b"seed-rtf", ca=ca)
    device.flock.enroll_local_user(
        enroll_master(alice_master, np.random.default_rng(7)))
    server = WebServer("www.rtf.example", ca, b"server-rtf")
    server.create_account("alice", "alice-password")
    outcome = register_device(device, server, UntrustedChannel(), "alice",
                              BUTTON_XY, alice_master,
                              np.random.default_rng(11))
    assert outcome.success, outcome.reason
    return device, server


@pytest.fixture()
def live_session(deployment, alice_master):
    device, server = deployment
    channel = UntrustedChannel()
    rng = np.random.default_rng(81)
    outcome = login(device, server, channel, "alice", BUTTON_XY,
                    alice_master, rng)
    assert outcome.success, outcome.reason
    device.flock._pending_challenges.pop(server.domain, None)
    yield device, server, channel, outcome.session, rng
    device.flock._pending_challenges.pop(server.domain, None)
    device.flock.close_session(server.domain)


class TestChallengeAnswerReplay:
    """Model trace: adv-login replays a recorded chal-resp (PV403)."""

    def test_replay_after_pass_rejected(self, live_session, alice_master):
        device, server, channel, session, rng = live_session
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        result = answer_challenge(device, server, channel, session,
                                  BUTTON_XY, alice_master, rng)
        assert result.success, result.reason
        replayed = channel.recorded("challenge-response")[-1].envelope
        with pytest.raises(ProtocolError) as exc_info:
            server.dispatch(replayed)
        assert exc_info.value.reason == "no-challenge-pending"

    def test_replay_against_new_challenge_rejected(self, live_session,
                                                   alice_master):
        """A stale answer must not clear a *later* challenge."""
        device, server, channel, session, rng = live_session
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        result = answer_challenge(device, server, channel, session,
                                  BUTTON_XY, alice_master, rng)
        assert result.success, result.reason
        stale = channel.recorded("challenge-response")[-1].envelope
        # A second elevated-risk request opens a fresh challenge.
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        state = server.session(session.session_id)
        assert state.pending_challenge is not None
        with pytest.raises(ProtocolError) as exc_info:
            server.dispatch(stale)
        assert exc_info.value.reason == "bad-nonce"
        # The challenge is still pending: the replay cleared nothing.
        assert state.pending_challenge is not None
        assert state.challenges_passed == 1


class TestOutOfOrderDelivery:
    """Model trace: adv-channel re-delivers a stale challenge downlink."""

    def test_reordered_challenge_desyncs_but_grants_nothing(
            self, live_session, alice_master):
        device, server, channel, session, rng = live_session
        session_request(device, server, channel, session, risk=0.6, rng=rng)
        result = answer_challenge(device, server, channel, session,
                                  BUTTON_XY, alice_master, rng)
        assert result.success, result.reason
        stale_challenge = channel.recorded("challenge")[-1].envelope

        def reorder(envelope, direction):
            if (direction == "to-device"
                    and envelope.msg_type == "content-page"):
                return stale_challenge
            return envelope

        reordering = UntrustedChannel(tamper_hook=reorder)
        # The stale challenge carries a valid session MAC, so the device
        # accepts it and re-enters the challenge flow with a stale nonce.
        result = session_request(device, server, reordering, session,
                                 risk=0.0, rng=rng)
        assert result.reason == "challenge-required"
        # Answering the resurrected challenge grants nothing: the server
        # has no challenge pending and the nonce is stale.
        answered = answer_challenge(device, server, channel, session,
                                    BUTTON_XY, alice_master, rng)
        assert not answered.success
        assert answered.reason in ("no-challenge-pending", "bad-nonce")
        # The desynced device cannot continue the session either.
        follow_up = session_request(device, server, channel, session,
                                    risk=0.0, rng=rng)
        assert not follow_up.success
        assert follow_up.reason == "bad-nonce"


class TestResetFailurePaths:
    def test_wrong_password_leaves_binding_and_sessions(self, fresh_world,
                                                        alice_master):
        device, server = fresh_world
        channel = UntrustedChannel()
        rng = np.random.default_rng(21)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success, outcome.reason
        before = server.rejections["bad-password"]
        with pytest.raises(ProtocolError) as exc_info:
            reset_identity(server, "alice", "wrong-password")
        assert exc_info.value.reason == "bad-password"
        assert server.rejections["bad-password"] == before + 1
        # Nothing was revoked: binding and session both survive.
        assert server.account_key("alice") is not None
        assert server.active_sessions == 1
        result = session_request(device, server, channel, outcome.session,
                                 risk=0.0, rng=rng)
        assert result.success, result.reason
        device.flock.close_session(server.domain)

    def test_unknown_account_reset_rejected(self, fresh_world):
        _, server = fresh_world
        with pytest.raises(ProtocolError, match="unknown-account"):
            reset_identity(server, "mallory", "whatever")

    def test_reset_terminates_live_sessions(self, fresh_world, alice_master):
        """Model invariant PV405: no session may outlive its binding."""
        device, server = fresh_world
        channel = UntrustedChannel()
        rng = np.random.default_rng(22)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success, outcome.reason
        assert server.active_sessions == 1
        assert reset_identity(server, "alice", "alice-password")
        assert server.account_key("alice") is None
        assert server.active_sessions == 0
        result = session_request(device, server, channel, outcome.session,
                                 risk=0.0, rng=rng)
        assert not result.success
        assert result.reason == "unknown-session"
        device.flock.close_session(server.domain)


class TestTransferFailurePaths:
    def test_impostor_cannot_authorize_transfer(self, fresh_world, ca,
                                                alice_master, eve_master):
        device, server = fresh_world
        new_device = MobileDevice("dev-rtf-new", b"seed-rtf-new", ca=ca)
        with pytest.raises(TransferError, match="did not verify"):
            transfer_identity(device, new_device, BUTTON_XY, eve_master,
                              np.random.default_rng(31))
        # The old device keeps its binding and can still log in.
        assert device.flock.flash.has_record(server.domain)
        outcome = login(device, server, UntrustedChannel(), "alice",
                        BUTTON_XY, alice_master, np.random.default_rng(32))
        assert outcome.success, outcome.reason
        device.flock.close_session(server.domain)

    def test_interrupted_transfer_leaves_old_device_intact(
            self, fresh_world, ca, alice_master, monkeypatch):
        """A transfer dropped mid-way must not retire the old device."""
        device, server = fresh_world
        new_device = MobileDevice("dev-rtf-drop", b"seed-rtf-drop", ca=ca)

        def dropped(bundle):
            raise FlockError("import failed: bundle truncated in transit")

        monkeypatch.setattr(new_device.flock, "import_identity", dropped)
        with pytest.raises(FlockError, match="truncated"):
            transfer_identity(device, new_device, BUTTON_XY, alice_master,
                              np.random.default_rng(33))
        # Old device untouched, new device got nothing.
        assert device.flock.flash.has_record(server.domain)
        assert not new_device.flock.flash.has_record(server.domain)
        outcome = login(device, server, UntrustedChannel(), "alice",
                        BUTTON_XY, alice_master, np.random.default_rng(34))
        assert outcome.success, outcome.reason
        device.flock.close_session(server.domain)

    def test_old_device_retired_after_transfer(self, fresh_world, ca,
                                               alice_master):
        """Model invariant PV404: only one device bound per account."""
        device, server = fresh_world
        channel = UntrustedChannel()
        rng = np.random.default_rng(35)
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success, outcome.reason
        new_device = MobileDevice("dev-rtf-up", b"seed-rtf-up", ca=ca)
        domains = transfer_identity(device, new_device, BUTTON_XY,
                                    alice_master, rng)
        assert server.domain in domains
        # The old device's record *and* open session are gone.
        assert not device.flock.flash.has_record(server.domain)
        stale = session_request(device, server, channel, outcome.session,
                                risk=0.0, rng=rng)
        assert not stale.success
        assert stale.reason.startswith("device-rejected")
        old_login = login(device, server, UntrustedChannel(), "alice",
                          BUTTON_XY, alice_master, rng)
        assert not old_login.success
        # The new device logs in with no server-side change at all.
        new_login = login(new_device, server, UntrustedChannel(), "alice",
                          BUTTON_XY, alice_master, rng)
        assert new_login.success, new_login.reason
        new_device.flock.close_session(server.domain)
