"""MobileDevice wiring and the default sensor layout."""

import numpy as np
import pytest

from repro.fingerprint import enroll_master, synthesize_master
from repro.hardware import TouchEvent
from repro.net import MobileDevice, default_layout


@pytest.fixture(scope="module")
def device():
    master = synthesize_master("dev-f", np.random.default_rng(5))
    device = MobileDevice("wiring-dev", b"wiring-seed")
    device.flock.enroll_local_user(
        enroll_master(master, np.random.default_rng(6)))
    return device, master


class TestDefaultLayout:
    def test_four_sensors_within_panel(self):
        layout = default_layout()
        assert len(layout.sensors) == 4
        assert 0.15 < layout.area_fraction() < 0.25

    def test_login_button_location_covered(self):
        layout = default_layout()
        assert layout.sensor_at(28.0, 80.0, margin_mm=2.0) is not None

    def test_no_overlaps(self):
        layout = default_layout()
        for i, a in enumerate(layout.sensors):
            for b in layout.sensors[i + 1:]:
                assert not a.overlaps(b)


class TestMobileDevice:
    def test_panel_matches_layout_dimensions(self, device):
        dev, _ = device
        assert dev.panel.width_mm == dev.layout.panel_width_mm
        assert dev.panel.height_mm == dev.layout.panel_height_mm

    def test_touch_routes_through_flock(self, device):
        dev, master = device
        rng = np.random.default_rng(0)
        located, outcome = dev.touch(
            TouchEvent(time_s=0.0, x_mm=28.0, y_mm=80.0,
                       finger_id=master.finger_id),
            master, rng)
        assert located.report_time_s == pytest.approx(0.004)
        assert outcome.captured

    def test_touch_at_convenience(self, device):
        dev, master = device
        rng = np.random.default_rng(1)
        located, outcome = dev.touch_at(5.0, 5.0, 1.0, master, rng)
        assert not outcome.captured  # top-left corner: no sensor

    def test_browser_starts_clean(self, device):
        dev, _ = device
        assert not dev.browser.compromised

    def test_device_without_ca_has_no_certificate(self, device):
        dev, _ = device
        assert dev.flock.certificate is None
