"""Shared remote-protocol fixtures.

The CA, server and device each cost an RSA key generation, so the honest
deployment is built once per module and each test gets a fresh channel.
State-mutating tests (registration) use their own accounts.
"""

import numpy as np
import pytest

from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import MobileDevice, UntrustedChannel, WebServer, register_device

#: The registration/login button location: over the bottom-centre sensor.
BUTTON_XY = (28.0, 80.0)


@pytest.fixture(scope="module")
def alice_master():
    return synthesize_master("alice-thumb", np.random.default_rng(5))


@pytest.fixture(scope="module")
def eve_master():
    return synthesize_master("eve-thumb", np.random.default_rng(900))


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(rng=HmacDrbg(b"ca-net-tests"), key_bits=1024)


@pytest.fixture(scope="module")
def deployment(ca, alice_master):
    """One device (enrolled), one server, one registered account."""
    template = enroll_master(alice_master, np.random.default_rng(6))
    device = MobileDevice("dev-net", b"seed-net", ca=ca)
    device.flock.enroll_local_user(template)
    server = WebServer("www.xyz.com", ca, b"server-net")
    server.create_account("alice", "alice-password")
    channel = UntrustedChannel()
    outcome = register_device(device, server, channel, "alice",
                              BUTTON_XY, alice_master,
                              np.random.default_rng(10))
    assert outcome.success, outcome.reason
    return device, server


@pytest.fixture()
def channel():
    return UntrustedChannel()
