"""Cookie-extension transport: envelope <-> Cookie header round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import hmac_sha256
from repro.net import (
    Envelope,
    ProtocolError,
    UntrustedChannel,
    cookie_size_bytes,
    decode_cookie,
    encode_cookie,
    login,
)
from .conftest import BUTTON_XY


class TestRoundTrip:
    def test_simple_envelope(self):
        envelope = Envelope("page-request", {
            "account": "alice", "nonce": b"\x01\x02", "risk": 0.25,
            "count": 7, "flag": True,
        })
        restored = decode_cookie(encode_cookie(envelope))
        assert restored.msg_type == envelope.msg_type
        assert restored.fields == envelope.fields

    def test_mac_survives_encoding(self):
        envelope = Envelope("page-request", {"nonce": b"\xff" * 16,
                                             "risk": 0.1})
        envelope.set_mac(hmac_sha256(b"key" * 11, envelope.signed_bytes()))
        restored = decode_cookie(encode_cookie(envelope))
        assert restored.signed_bytes() == envelope.signed_bytes()
        assert restored.mac == envelope.mac

    @given(st.dictionaries(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=10),
        st.one_of(st.binary(max_size=40),
                  st.integers(min_value=-10**9, max_value=10**9),
                  st.text(alphabet="xyz; =,\"'", max_size=20),
                  st.booleans()),
        max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, fields):
        envelope = Envelope("t", fields)
        restored = decode_cookie(encode_cookie(envelope))
        assert restored.fields == fields

    def test_float_roundtrip_exact(self):
        envelope = Envelope("t", {"risk": 0.30000000000000004})
        restored = decode_cookie(encode_cookie(envelope))
        assert restored.fields["risk"] == 0.30000000000000004


class TestHeaderBehaviour:
    def test_foreign_cookies_ignored(self):
        header = ("sessionid=abc123; " + encode_cookie(Envelope("t", {"x": 1}))
                  + "; theme=dark")
        restored = decode_cookie(header)
        assert restored.msg_type == "t"
        assert restored.fields == {"x": 1}

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError, match="missing trust-type"):
            decode_cookie("sessionid=abc; theme=dark")

    def test_malformed_value_rejected(self):
        valid = encode_cookie(Envelope("t", {}))
        with pytest.raises(ProtocolError, match="unknown type tag"):
            decode_cookie(valid + "; trust-x=Z###")
        with pytest.raises(ProtocolError, match="malformed-cookie"):
            decode_cookie(valid + "; trust-x=b%%%")  # bad base64

    def test_empty_value_rejected(self):
        with pytest.raises(ProtocolError, match="empty value"):
            decode_cookie("trust-type=")

    def test_unsafe_field_name_rejected(self):
        with pytest.raises(ValueError, match="cookie-safe"):
            encode_cookie(Envelope("t", {"bad name": 1}))

    def test_header_is_ascii(self):
        envelope = Envelope("t", {"data": bytes(range(256)), "s": "héllo"})
        header = encode_cookie(envelope)
        header.encode("ascii")  # must not raise
        assert decode_cookie(header).fields["s"] == "héllo"


class TestOverhead:
    def test_cookie_overhead_is_bounded(self, deployment, alice_master):
        """Real protocol messages fit comfortably in cookie limits (4 KiB)."""
        device, server = deployment
        rng = np.random.default_rng(70)
        channel = UntrustedChannel()
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        device.flock.close_session(server.domain)
        for record in channel.log:
            envelope = record.envelope
            if "page" in envelope.fields:
                continue  # page bodies travel as content, not cookies
            size = cookie_size_bytes(envelope)
            assert size < 4096, (envelope.msg_type, size)
            # base64 + attribute names cost < 2.5x the canonical bytes.
            assert size < 2.5 * envelope.size_bytes() + 200
