"""The uniform ``WebServer.dispatch`` API, version gate and wire codec."""

import numpy as np
import pytest

from repro.net import (
    MSG_CHALLENGE_RESPONSE,
    MSG_CONTENT_PAGE,
    MSG_LOGIN_SUBMIT,
    MSG_PAGE_REQUEST,
    MSG_REGISTRATION_SUBMIT,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    Envelope,
    ProtocolError,
    TrustClient,
    UntrustedChannel,
    WebServer,
    decode_envelope,
    encode_envelope,
)

from .conftest import BUTTON_XY


class TestEndpointRegistry:
    def test_every_message_type_routes_to_its_handler(self):
        registry = WebServer.ENDPOINTS
        assert registry[MSG_REGISTRATION_SUBMIT].handler \
            is WebServer._serve_registration
        assert registry[MSG_LOGIN_SUBMIT].handler is WebServer._serve_login
        assert registry[MSG_PAGE_REQUEST].handler is WebServer._serve_request
        assert registry[MSG_CHALLENGE_RESPONSE].handler \
            is WebServer._serve_challenge_response

    def test_registry_is_typed(self):
        for msg_type, endpoint in WebServer.ENDPOINTS.items():
            assert endpoint.msg_type == msg_type
            assert endpoint.summary
            assert endpoint.name.startswith("_serve_")

    def test_server_to_device_pages_are_not_endpoints(self):
        """Pages the *server* initiates never arrive as inbound traffic."""
        assert MSG_CONTENT_PAGE not in WebServer.ENDPOINTS
        assert "registration-page" not in WebServer.ENDPOINTS


class TestDispatch:
    def test_unknown_endpoint_rejected(self, ca):
        server = WebServer("www.d1.example", ca, b"dispatch-1")
        with pytest.raises(ProtocolError) as excinfo:
            server.dispatch(Envelope("cookie-request"))
        assert excinfo.value.reason == "unknown-endpoint"
        assert server.rejections["unknown-endpoint"] == 1

    def test_unsupported_version_rejected(self, ca):
        server = WebServer("www.d2.example", ca, b"dispatch-2")
        envelope = Envelope(MSG_PAGE_REQUEST, {}, version=2)
        with pytest.raises(ProtocolError) as excinfo:
            server.dispatch(envelope)
        assert excinfo.value.reason == "unsupported-version"
        assert server.rejections["unsupported-version"] == 1

    def test_version_gate_precedes_routing(self, ca):
        """A bad version fails closed even for unroutable types."""
        server = WebServer("www.d3.example", ca, b"dispatch-3")
        with pytest.raises(ProtocolError) as excinfo:
            server.dispatch(Envelope("no-such-type", {}, version=99))
        assert excinfo.value.reason == "unsupported-version"

    def test_dispatch_counts_endpoint_calls(self, deployment, alice_master,
                                            channel):
        device, server = deployment
        before = server.endpoint_calls[MSG_LOGIN_SUBMIT]
        client = TrustClient(device, server, channel)
        outcome = client.login("alice", BUTTON_XY, alice_master,
                               np.random.default_rng(40))
        assert outcome.success, outcome.reason
        assert server.endpoint_calls[MSG_LOGIN_SUBMIT] == before + 1
        device.flock.close_session(server.domain)


class TestDispatchParity:
    def test_registration_identical_across_same_seeded_servers(
            self, ca, deployment, alice_master):
        """The same submission binds identically on same-seeded servers."""
        device, _ = deployment
        server_a = WebServer("www.parity.example", ca, b"parity-seed")
        server_b = WebServer("www.parity.example", ca, b"parity-seed")
        for server in (server_a, server_b):
            server.create_account("alice", "pw")

        channel = UntrustedChannel()
        client = TrustClient(device, server_a, channel)
        outcome = client.register("alice", BUTTON_XY, alice_master,
                                  np.random.default_rng(41))
        assert outcome.success, outcome.reason
        ack_a = channel.recorded(MSG_CONTENT_PAGE, "to-device")[-1].envelope

        # Same key seed => server_b issues the same registration nonce;
        # replay the identical submission through its own dispatch.
        server_b.registration_page()
        submission = channel.recorded(MSG_REGISTRATION_SUBMIT,
                                      "to-server")[-1].envelope.copy()
        ack_b = server_b.dispatch(submission)

        assert ack_b.msg_type == ack_a.msg_type
        assert ack_b.fields == ack_a.fields  # includes the server MAC
        assert server_a.account_key("alice").to_bytes() == \
            server_b.account_key("alice").to_bytes()


class TestWireCodec:
    def test_round_trip_every_field_type(self):
        envelope = Envelope(MSG_PAGE_REQUEST, {
            "blob": b"\x00\xff wire bytes",
            "flag": True,
            "count": -17,
            "ratio": 0.1875,
            "text": "line one\nline two = tricky s:tuff",
        })
        decoded = decode_envelope(encode_envelope(envelope))
        assert decoded.msg_type == envelope.msg_type
        assert decoded.fields == envelope.fields
        assert decoded.version == PROTOCOL_VERSION

    def test_version_survives_round_trip(self):
        assert 1 in SUPPORTED_PROTOCOL_VERSIONS
        envelope = Envelope("login-submit", {"n": 1}, version=1)
        assert decode_envelope(encode_envelope(envelope)).version == 1

    def test_unknown_version_fails_closed(self):
        data = encode_envelope(Envelope("login-submit", {"n": 1}))
        bumped = data.replace(b" v1 ", b" v2 ", 1)
        with pytest.raises(ProtocolError) as excinfo:
            decode_envelope(bumped)
        assert excinfo.value.reason == "unsupported-version"

    @pytest.mark.parametrize("data", [
        b"not an envelope",
        b"trust-envelope v1",  # header too short
        b"trust-envelope vX login-submit",
        b"wrong-magic v1 login-submit",
        b"trust-envelope v1 ",  # empty message type
        b"trust-envelope v1 login-submit\nno-separator-line",
        b"trust-envelope v1 login-submit\n=empty-name",
        b"trust-envelope v1 login-submit\na=i:1\na=i:2",  # duplicate
        b"trust-envelope v1 login-submit\na=q:unknown-tag",
        b"trust-envelope v1 login-submit\na=i:not-an-int",
        b"trust-envelope v1 login-submit\na=b:zz",  # bad hex
        b"trust-envelope v1 login-submit\na=B:7",  # bad bool literal
        b"\xff\xfe\x00surrogate soup",
    ])
    def test_malformations_all_raise_one_reason(self, data):
        with pytest.raises(ProtocolError) as excinfo:
            decode_envelope(data)
        assert excinfo.value.reason == "malformed-message"

    def test_unsafe_field_name_refused_at_encode(self):
        with pytest.raises(TypeError):
            encode_envelope(Envelope("x", {"bad=name": 1}))
        with pytest.raises(TypeError):
            encode_envelope(Envelope("x", {"bad\nname": 1}))

    def test_copy_preserves_version(self):
        envelope = Envelope("x", {"n": 1}, version=PROTOCOL_VERSION)
        assert envelope.copy().version == envelope.version
