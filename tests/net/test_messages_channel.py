"""Envelope canonical encoding and the untrusted channel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Envelope, ProtocolError, UntrustedChannel, canonical_payload


class TestCanonicalEncoding:
    def test_field_order_irrelevant(self):
        a = canonical_payload({"x": 1, "y": b"\x01", "z": "s"})
        b = canonical_payload({"z": "s", "x": 1, "y": b"\x01"})
        assert a == b

    def test_mac_field_excluded(self):
        with_mac = canonical_payload({"x": 1, "mac": b"\xff" * 32})
        without = canonical_payload({"x": 1})
        assert with_mac == without

    def test_types_are_tagged(self):
        # "1" the string and 1 the int must encode differently.
        assert canonical_payload({"x": 1}) != canonical_payload({"x": "1"})
        assert canonical_payload({"x": True}) != canonical_payload({"x": 1})

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            canonical_payload({"x": [1, 2]})

    @given(st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=8),
        st.one_of(st.integers(min_value=-10**6, max_value=10**6),
                  st.binary(max_size=20),
                  st.text(alphabet="xyz0189 ", max_size=20),
                  st.booleans()),
        max_size=6))
    @settings(deadline=None, max_examples=50)
    def test_deterministic(self, fields):
        assert canonical_payload(fields) == canonical_payload(dict(fields))

    def test_signed_bytes_covers_type_tag(self):
        a = Envelope("type-a", {"x": 1})
        b = Envelope("type-b", {"x": 1})
        assert a.signed_bytes() != b.signed_bytes()

    def test_require(self):
        envelope = Envelope("t", {"x": 1})
        envelope.require("x")
        with pytest.raises(ProtocolError, match="missing"):
            envelope.require("x", "y")

    def test_copy_is_deep_enough(self):
        envelope = Envelope("t", {"x": 1})
        clone = envelope.copy()
        clone.fields["x"] = 2
        assert envelope.fields["x"] == 1


class TestChannel:
    def test_carries_and_logs(self):
        channel = UntrustedChannel()
        delivered = channel.send(Envelope("t", {"x": 1}), "to-server")
        assert delivered.fields["x"] == 1
        assert channel.message_count == 1
        assert channel.bytes_to_server > 0

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            UntrustedChannel().send(Envelope("t"), "sideways")

    def test_drop_hook(self):
        channel = UntrustedChannel(drop_hook=lambda e, d: True)
        assert channel.send(Envelope("t"), "to-device") is None
        assert channel.message_count == 1  # logged even when dropped

    def test_tamper_hook_modifies_delivery_not_log(self):
        def tamper(envelope, direction):
            envelope.fields["x"] = 999
            return envelope

        channel = UntrustedChannel(tamper_hook=tamper)
        delivered = channel.send(Envelope("t", {"x": 1}), "to-server")
        assert delivered.fields["x"] == 999
        assert channel.log[0].envelope.fields["x"] == 1

    def test_delivered_copy_is_isolated_from_sender(self):
        channel = UntrustedChannel()
        original = Envelope("t", {"x": 1})
        delivered = channel.send(original, "to-server")
        delivered.fields["x"] = 2
        assert original.fields["x"] == 1

    def test_recorded_filters(self):
        channel = UntrustedChannel()
        channel.send(Envelope("a"), "to-server")
        channel.send(Envelope("b"), "to-device")
        channel.send(Envelope("a"), "to-device")
        assert len(channel.recorded("a")) == 2
        assert len(channel.recorded(direction="to-device")) == 2
        assert len(channel.recorded("a", "to-device")) == 1
