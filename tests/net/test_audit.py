"""FrameAuditor: the section IV-B off-line audit process."""

import numpy as np
import pytest

from repro.net import FrameAuditor, Malware, UntrustedChannel, login, session_request
from .conftest import BUTTON_XY


class TestFrameAuditor:
    def test_honest_session_audits_clean(self, deployment, alice_master):
        device, server = deployment
        rng = np.random.default_rng(50)
        channel = UntrustedChannel()
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        for _ in range(4):
            session_request(device, server, channel, outcome.session,
                            risk=0.0, rng=rng)
        device.flock.close_session(server.domain)

        report = FrameAuditor(server).audit_account("alice")
        assert report.clean
        assert report.total_entries >= 5
        assert report.verification_rate == 1.0

    def test_spoofed_frame_flagged(self, deployment, alice_master):
        device, server = deployment
        rng = np.random.default_rng(51)
        device.browser.infect(Malware(
            page_rewriter=lambda page: b"<html>EVIL OVERLAY</html>"))
        channel = UntrustedChannel()
        try:
            outcome = login(device, server, channel, "alice", BUTTON_XY,
                            alice_master, rng)
        finally:
            device.browser.malware = None
        assert outcome.success  # crypto is intact; only the display lied
        device.flock.close_session(server.domain)

        report = FrameAuditor(server).audit_account("alice")
        assert not report.clean
        assert report.findings
        assert report.findings[-1].account == "alice"
        assert report.verification_rate < 1.0

    def test_zoomed_view_still_verifies(self, deployment, alice_master):
        """User gestures change the view; the finite view set covers it."""
        device, server = deployment
        log_start = len(server.frame_audit_log)
        rng = np.random.default_rng(52)
        channel = UntrustedChannel()
        outcome = login(device, server, channel, "alice", BUTTON_XY,
                        alice_master, rng)
        assert outcome.success
        # Zoom the displayed page, then issue a request attesting the new view.
        device.flock.display.apply_view_change(zoom=2.0, scroll_px=64)
        result = session_request(device, server, channel, outcome.session,
                                 risk=0.0, rng=rng)
        assert result.success
        device.flock.close_session(server.domain)

        # The shared server's log may hold spoofed frames from earlier
        # tests; only this test's entries are under scrutiny.
        whitelist = FrameAuditor(server).whitelist()
        new_entries = [h for account, h in server.frame_audit_log[log_start:]
                       if account == "alice"]
        assert new_entries
        assert all(h in whitelist for h in new_entries)

    def test_audit_all_covers_accounts(self, deployment, alice_master):
        _, server = deployment
        reports = FrameAuditor(server).audit_all()
        assert "alice" in reports

    def test_unknown_account_empty_report(self, deployment):
        _, server = deployment
        report = FrameAuditor(server).audit_account("nobody")
        assert report.total_entries == 0
        assert report.clean
        assert report.verification_rate == 1.0

    def test_whitelist_cached(self, deployment):
        _, server = deployment
        auditor = FrameAuditor(server)
        first = auditor.whitelist()
        assert auditor.whitelist() is first
        assert len(first) > 100  # pages x zoom steps x scroll positions

    def test_validation(self, deployment):
        _, server = deployment
        with pytest.raises(ValueError):
            FrameAuditor(server, max_scroll_px=-1)
