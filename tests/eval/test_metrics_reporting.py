"""Metrics (ROC/EER/latency) and text reporting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    detection_latency_stats,
    equal_error_rate,
    far_frr_at,
    format_si,
    render_density,
    render_table,
    roc_curve,
    standard_deployment,
)


class TestRoc:
    def test_perfect_separation(self):
        genuine = np.array([0.8, 0.9, 0.85])
        impostor = np.array([0.1, 0.2, 0.15])
        eer, threshold = equal_error_rate(genuine, impostor)
        assert eer == 0.0
        assert 0.2 < threshold < 0.8

    def test_total_overlap(self):
        scores = np.array([0.5] * 10)
        eer, _ = equal_error_rate(scores, scores)
        assert eer >= 0.49

    def test_eer_known_value(self):
        # 1 of 4 genuine below 0.5, 1 of 4 impostors above 0.5 -> EER 0.25.
        genuine = np.array([0.4, 0.7, 0.8, 0.9])
        impostor = np.array([0.1, 0.2, 0.3, 0.6])
        eer, _ = equal_error_rate(genuine, impostor)
        assert eer == pytest.approx(0.25, abs=0.01)

    def test_far_frr_at_threshold(self):
        genuine = np.array([0.4, 0.6])
        impostor = np.array([0.3, 0.7])
        far, frr = far_frr_at(genuine, impostor, 0.5)
        assert far == 0.5 and frr == 0.5

    def test_roc_monotonicity(self):
        rng = np.random.default_rng(0)
        curve = roc_curve(rng.beta(8, 3, 200), rng.beta(2, 8, 200))
        # FAR decreases with threshold, FRR increases.
        assert (np.diff(curve.far) <= 1e-12).all()
        assert (np.diff(curve.frr) >= -1e-12).all()

    def test_auc_reasonable(self):
        rng = np.random.default_rng(0)
        curve = roc_curve(rng.beta(8, 3, 500), rng.beta(2, 8, 500))
        assert 0.9 < curve.auc() <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([]), np.array([0.5]))

    @given(st.integers(min_value=2, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_eer_in_unit_range(self, n):
        rng = np.random.default_rng(n)
        eer, threshold = equal_error_rate(rng.random(n), rng.random(n))
        assert 0.0 <= eer <= 1.0
        assert 0.0 <= threshold <= 1.0


class TestLatencyStats:
    def test_basic(self):
        stats = detection_latency_stats([5, 10, 15, None])
        assert stats.n == 4 and stats.detected == 3
        assert stats.mean == pytest.approx(10.0)
        assert stats.median == pytest.approx(10.0)
        assert stats.detection_rate == pytest.approx(0.75)

    def test_none_detected(self):
        stats = detection_latency_stats([None, None])
        assert stats.detected == 0
        assert stats.mean == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detection_latency_stats([])


class TestReporting:
    def test_table_alignment(self):
        table = render_table(["name", "value"],
                             [["a", 1], ["longer-name", 2.5]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_table_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_table_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_density_render(self):
        grid = np.zeros((4, 6))
        grid[1, 2] = 1.0
        art = render_density(grid, title="D")
        lines = art.splitlines()
        assert lines[0] == "D"
        assert lines[2][2] == "@"  # peak gets the darkest shade
        assert lines[3][0] == " "

    def test_density_all_zero(self):
        art = render_density(np.zeros((2, 3)))
        assert set(art.replace("\n", "")) <= {" "}

    def test_density_requires_2d(self):
        with pytest.raises(ValueError):
            render_density(np.zeros(5))

    def test_format_si(self):
        assert format_si(0.00123, "s") == "1.23ms"
        assert format_si(12400.0, "B") == "12.4kB"
        assert format_si(0, "J") == "0J"
        assert format_si(3.2e-8, "s") == "32ns"


class TestHarness:
    def test_standard_deployment_cached(self):
        a = standard_deployment(seed=321, registered=False)
        b = standard_deployment(seed=321, registered=False)
        assert a is b

    def test_standard_deployment_registered(self):
        world = standard_deployment(seed=99)
        assert world.server.account_key(world.account) is not None
        assert world.device.flock.flash.has_record(world.server.domain)

    def test_fresh_channel(self):
        world = standard_deployment(seed=99)
        old = world.channel
        new = world.fresh_channel()
        assert new is not old and world.channel is new


class TestEerConfidence:
    def test_interval_brackets_point(self):
        from repro.eval import eer_confidence_interval
        rng = np.random.default_rng(0)
        genuine = rng.beta(8, 3, 150)
        impostor = rng.beta(2, 8, 150)
        point, low, high = eer_confidence_interval(genuine, impostor,
                                                   n_bootstrap=200)
        assert low <= point <= high
        assert 0.0 <= low and high <= 1.0
        assert high - low < 0.25  # informative at n=150

    def test_more_data_tighter_interval(self):
        from repro.eval import eer_confidence_interval
        rng = np.random.default_rng(1)
        small = eer_confidence_interval(rng.beta(8, 3, 40),
                                        rng.beta(2, 8, 40),
                                        n_bootstrap=200)
        large = eer_confidence_interval(rng.beta(8, 3, 800),
                                        rng.beta(2, 8, 800),
                                        n_bootstrap=200)
        assert (large[2] - large[1]) < (small[2] - small[1])

    def test_confidence_validation(self):
        from repro.eval import eer_confidence_interval
        with pytest.raises(ValueError):
            eer_confidence_interval(np.array([0.9]), np.array([0.1]),
                                    confidence=1.5)


class TestRenderSeries:
    def test_basic_shape(self):
        from repro.eval import render_series
        chart = render_series([0.0, 0.5, 1.0], title="T", height=4)
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 4 + 1  # title + rows + axis
        assert lines[-1].startswith("      +")

    def test_values_land_on_their_levels(self):
        from repro.eval import render_series
        chart = render_series([0.0, 1.0], height=2, y_min=0, y_max=1)
        rows = chart.splitlines()
        assert rows[0].endswith(" *")  # top row: the 1.0 value
        assert rows[1].endswith("*.")  # bottom row: the 0.0 value

    def test_markers_drawn_on_top_row(self):
        from repro.eval import render_series
        chart = render_series([0.1] * 5, height=3, y_min=0, y_max=1,
                              markers={2: "T"})
        top = chart.splitlines()[0]
        assert top[7 + 2] == "T"

    def test_flat_series_ok(self):
        from repro.eval import render_series
        chart = render_series([0.5, 0.5, 0.5])
        assert "*" in chart

    def test_validation(self):
        from repro.eval import render_series
        with pytest.raises(ValueError):
            render_series([])
        with pytest.raises(ValueError):
            render_series([1.0], height=1)
