"""TFT defect model, compensation, and yield (section II-C economics)."""

import numpy as np
import pytest

from repro.hardware import DefectMap, yield_fraction


class TestDefectMap:
    def test_sample_statistics(self):
        rng = np.random.default_rng(0)
        defects = DefectMap.sample(256, 256, rng, cell_defect_rate=0.01,
                                   line_defect_rate=0.0)
        fraction = defects.dead_cells.mean()
        assert 0.005 < fraction < 0.02
        assert not defects.dead_rows and not defects.dead_cols

    def test_total_dead_fraction_includes_lines(self):
        defects = DefectMap(rows=10, cols=10, dead_rows=[3], dead_cols=[7])
        # one row + one col - the shared cell = 19 cells of 100.
        assert defects.total_dead_fraction == pytest.approx(0.19)

    def test_apply_to_analog_capture(self):
        defects = DefectMap(rows=8, cols=8, dead_rows=[2])
        image = np.ones((8, 8))
        out = defects.apply_to_capture(image)
        assert (out[2] == 0.5).all()
        assert (out[3] == 1.0).all()

    def test_apply_to_binary_capture(self):
        defects = DefectMap(rows=8, cols=8, dead_cols=[1])
        image = np.ones((8, 8), dtype=bool)
        out = defects.apply_to_capture(image)
        assert not out[:, 1].any()
        assert out[:, 0].all()

    def test_windowed_application(self):
        defects = DefectMap(rows=100, cols=100, dead_rows=[50])
        window = np.ones((20, 20))
        out = defects.apply_to_capture(window, window_row0=45,
                                       window_col0=0)
        assert (out[5] == 0.5).all()  # row 50 lands at local index 5
        out_far = defects.apply_to_capture(window, window_row0=70)
        assert (out_far == 1.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            DefectMap(rows=0, cols=5)
        with pytest.raises(ValueError):
            DefectMap(rows=5, cols=5, dead_rows=[9])
        with pytest.raises(ValueError):
            DefectMap.sample(5, 5, np.random.default_rng(0),
                             cell_defect_rate=2.0)


class TestCompensation:
    def test_compensation_fills_from_neighbours(self):
        defects = DefectMap(rows=8, cols=8, dead_rows=[3])
        image = np.zeros((8, 8))
        image[:4] = 1.0  # top half bright; row 3 dead
        corrupted = defects.apply_to_capture(image)
        fixed = defects.compensate(corrupted)
        # Row 3 refills from adjacent rows (values 1.0 above, 0.0 below).
        assert set(np.unique(fixed[3])) <= {0.0, 1.0}
        assert fixed[3].mean() > 0.0

    def test_no_defects_is_identity(self):
        defects = DefectMap(rows=6, cols=6)
        image = np.random.default_rng(0).random((6, 6))
        assert np.allclose(defects.compensate(image), image)

    def test_compensation_copy_not_inplace(self):
        defects = DefectMap(rows=6, cols=6, dead_cols=[2])
        image = np.ones((6, 6))
        corrupted = defects.apply_to_capture(image)
        fixed = defects.compensate(corrupted)
        assert (corrupted[:, 2] == 0.5).all()  # original untouched
        assert (fixed[:, 2] == 1.0).all()


class TestYield:
    def test_loose_budget_high_yield(self):
        rng = np.random.default_rng(1)
        assert yield_fraction(100, 256, 256, rng,
                              max_dead_fraction=0.05) > 0.95

    def test_tight_budget_low_yield(self):
        rng = np.random.default_rng(2)
        loose = yield_fraction(100, 256, 256, np.random.default_rng(2),
                               max_dead_fraction=0.02)
        tight = yield_fraction(100, 256, 256, np.random.default_rng(2),
                               max_dead_fraction=0.001)
        assert tight < loose

    def test_validation(self):
        with pytest.raises(ValueError):
            yield_fraction(0, 10, 10, np.random.default_rng(0), 0.1)
