"""Touchscreen model and sensor placement."""

import numpy as np
import pytest

from repro.hardware import (
    FLOCK_SENSOR,
    PlacedSensor,
    SensorLayout,
    TouchEvent,
    TouchPanel,
    greedy_placement,
    grid_placement,
    random_placement,
)


class TestTouchPanel:
    def test_locate_quantizes(self):
        panel = TouchPanel(width_mm=56, height_mm=94, grid_rows=40, grid_cols=24)
        located = panel.locate(TouchEvent(time_s=1.0, x_mm=28.0, y_mm=47.0))
        assert 0 <= located.grid_row < 40
        assert 0 <= located.grid_col < 24
        assert abs(located.x_mm - 28.0) < 56 / 24
        assert abs(located.y_mm - 47.0) < 94 / 40

    def test_report_latency_is_4ms(self):
        panel = TouchPanel()
        located = panel.locate(TouchEvent(time_s=2.0, x_mm=10, y_mm=10))
        assert located.report_time_s == pytest.approx(2.004)

    def test_out_of_panel_rejected(self):
        panel = TouchPanel()
        with pytest.raises(ValueError, match="outside panel"):
            panel.locate(TouchEvent(time_s=0, x_mm=100.0, y_mm=10.0))

    def test_corner_touch_in_range(self):
        panel = TouchPanel()
        located = panel.locate(
            TouchEvent(time_s=0, x_mm=panel.width_mm, y_mm=panel.height_mm))
        assert located.grid_row == panel.grid_rows - 1
        assert located.grid_col == panel.grid_cols - 1

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TouchEvent(time_s=0, x_mm=1, y_mm=1, pressure=2.0).validate()
        with pytest.raises(ValueError):
            TouchEvent(time_s=0, x_mm=1, y_mm=1, duration_s=0).validate()

    def test_touch_counter(self):
        panel = TouchPanel()
        panel.locate_many([TouchEvent(time_s=0, x_mm=5, y_mm=5),
                           TouchEvent(time_s=0, x_mm=6, y_mm=8)])
        assert panel.touches_seen == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TouchPanel(width_mm=-1)
        with pytest.raises(ValueError):
            TouchPanel(grid_rows=1)


class TestPlacedSensor:
    def test_covers_with_margin(self):
        sensor = PlacedSensor(FLOCK_SENSOR, 10.0, 20.0)  # 12.8 mm square
        assert sensor.covers(16.0, 26.0)
        assert sensor.covers(16.0, 26.0, margin_mm=4.0)
        assert not sensor.covers(11.0, 21.0, margin_mm=4.0)  # near edge
        assert not sensor.covers(5.0, 26.0)

    def test_cell_address_translation(self):
        sensor = PlacedSensor(FLOCK_SENSOR, 10.0, 20.0)
        row, col = sensor.cell_address(10.0 + 6.4, 20.0 + 6.4)  # centre
        assert abs(row - FLOCK_SENSOR.rows // 2) <= 1
        assert abs(col - FLOCK_SENSOR.cols // 2) <= 1

    def test_cell_address_outside_raises(self):
        sensor = PlacedSensor(FLOCK_SENSOR, 10.0, 20.0)
        with pytest.raises(ValueError):
            sensor.cell_address(0.0, 0.0)

    def test_overlap_detection(self):
        a = PlacedSensor(FLOCK_SENSOR, 0.0, 0.0)
        b = PlacedSensor(FLOCK_SENSOR, 6.0, 6.0)
        c = PlacedSensor(FLOCK_SENSOR, 20.0, 20.0)
        assert a.overlaps(b) and not a.overlaps(c)


class TestSensorLayout:
    def test_rejects_off_panel(self):
        with pytest.raises(ValueError, match="off-panel"):
            SensorLayout(56, 94, [PlacedSensor(FLOCK_SENSOR, 50.0, 0.0)])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            SensorLayout(56, 94, [
                PlacedSensor(FLOCK_SENSOR, 0.0, 0.0, label="a"),
                PlacedSensor(FLOCK_SENSOR, 5.0, 5.0, label="b"),
            ])

    def test_sensor_at(self):
        layout = SensorLayout(56, 94, [PlacedSensor(FLOCK_SENSOR, 10, 10)])
        assert layout.sensor_at(16, 16) is not None
        assert layout.sensor_at(50, 80) is None

    def test_area_fraction(self):
        layout = SensorLayout(56, 94, [PlacedSensor(FLOCK_SENSOR, 10, 10)])
        assert layout.area_fraction() == pytest.approx(
            12.8 * 12.8 / (56 * 94))

    def test_capture_rate(self):
        layout = SensorLayout(56, 94, [PlacedSensor(FLOCK_SENSOR, 10, 10)])
        points = np.array([[16.0, 16.0], [50.0, 80.0], [12.0, 12.0]])
        assert layout.capture_rate(points) == pytest.approx(2 / 3)
        assert layout.capture_rate(np.zeros((0, 2))) == 0.0


def _hotspot_density(rows=47, cols=28):
    """A density map with one dominant hot-spot (bottom-centre keyboard)."""
    density = np.full((rows, cols), 0.001)
    density[36:44, 8:20] = 1.0  # hot-spot
    return density / density.sum()


class TestPlacementAlgorithms:
    def test_greedy_lands_on_hotspot(self):
        density = _hotspot_density()
        layout = greedy_placement(density, 56.0, 94.0, FLOCK_SENSOR,
                                  n_sensors=1, margin_mm=2.0)
        sensor = layout.sensors[0]
        # Hot-spot rows 36-44 of 47 -> y around 72-88 mm; the sensor must
        # cover part of that band.
        assert sensor.y_mm + sensor.height_mm > 70.0
        assert 10.0 < sensor.x_mm + sensor.width_mm / 2 < 46.0

    def test_greedy_beats_grid_on_hotspot_workload(self):
        density = _hotspot_density()
        rng = np.random.default_rng(0)
        # Sample touches from the density map.
        flat = density.ravel()
        draws = rng.choice(len(flat), size=400, p=flat / flat.sum())
        rr, cc = np.unravel_index(draws, density.shape)
        points = np.stack([
            (cc + rng.random(400)) * 56.0 / density.shape[1],
            (rr + rng.random(400)) * 94.0 / density.shape[0],
        ], axis=1)

        greedy = greedy_placement(density, 56.0, 94.0, FLOCK_SENSOR, 2)
        grid = grid_placement(56.0, 94.0, FLOCK_SENSOR, 2)
        assert greedy.capture_rate(points) > grid.capture_rate(points)

    def test_grid_positions_on_panel(self):
        layout = grid_placement(56.0, 94.0, FLOCK_SENSOR, 4)
        assert len(layout.sensors) == 4

    def test_random_placement_deterministic_under_seed(self):
        a = random_placement(56.0, 94.0, FLOCK_SENSOR, 3,
                             np.random.default_rng(1))
        b = random_placement(56.0, 94.0, FLOCK_SENSOR, 3,
                             np.random.default_rng(1))
        assert [(s.x_mm, s.y_mm) for s in a.sensors] \
            == [(s.x_mm, s.y_mm) for s in b.sensors]

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_placement(_hotspot_density(), 56, 94, FLOCK_SENSOR, 0)
        with pytest.raises(ValueError):
            grid_placement(56, 94, FLOCK_SENSOR, 0)
        with pytest.raises(ValueError):
            random_placement(56, 94, FLOCK_SENSOR, 0, np.random.default_rng(0))

    def test_greedy_sensor_too_large(self):
        with pytest.raises(ValueError, match="larger than panel"):
            greedy_placement(_hotspot_density(), 5.0, 5.0, FLOCK_SENSOR, 1)

    def test_random_overcrowding_raises(self):
        with pytest.raises(RuntimeError):
            random_placement(26.0, 26.0, FLOCK_SENSOR, 5,
                             np.random.default_rng(0), max_attempts=50)
