"""SimClock, SensorSpec, SensorArray, readout policies, power model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    FLOCK_SENSOR,
    TABLE2_SPECS,
    AddressingMode,
    CaptureWindow,
    PowerModel,
    ReadoutPolicy,
    SensorArray,
    SensorSpec,
    SimClock,
    compare_policies,
    policy_capture_time_s,
)
from repro.hardware.sensor_array import SETUP_CYCLES


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_advance(self):
        clock = SimClock()
        clock.advance_ms(4.0)
        assert clock.now_ms == pytest.approx(4.0)
        clock.advance_s(1.0)
        assert clock.now_s == pytest.approx(1.004)

    def test_monotonic(self):
        with pytest.raises(ValueError):
            SimClock().advance_ns(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_ns=-5)


class TestSensorSpec:
    def test_table2_has_five_designs(self):
        assert len(TABLE2_SPECS) == 5
        assert len({s.name for s in TABLE2_SPECS}) == 5

    def test_dimensions_match_paper(self):
        by_ref = {s.reference: s for s in TABLE2_SPECS}
        assert (by_ref["[24]"].rows, by_ref["[24]"].cols) == (64, 256)
        assert (by_ref["[10]"].rows, by_ref["[10]"].cols) == (320, 250)
        assert (by_ref["[9]"].rows, by_ref["[9]"].cols) == (304, 304)

    def test_physical_size(self):
        spec = SensorSpec("s", "x", cell_um=50.0, rows=256, cols=256,
                          clock_hz=1e6, addressing=AddressingMode.SERIAL)
        assert spec.width_mm == pytest.approx(12.8)
        assert spec.height_mm == pytest.approx(12.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorSpec("s", "x", 50.0, 0, 10, 1e6, AddressingMode.SERIAL)
        with pytest.raises(ValueError):
            SensorSpec("s", "x", 50.0, 10, 10, 0, AddressingMode.SERIAL)
        with pytest.raises(ValueError):
            SensorSpec("s", "x", 50.0, 10, 10, 1e6, AddressingMode.SERIAL,
                       cells_per_cycle=0)


class TestCaptureWindow:
    def test_clamping(self):
        window = CaptureWindow(-5, 300, -2, 270).clamp(256, 256)
        assert (window.row0, window.row1) == (0, 256)
        assert (window.col0, window.col1) == (0, 256)

    def test_around_centered(self):
        window = CaptureWindow.around(100, 100, 40, 256, 256)
        assert window.n_rows == 80 and window.n_cols == 80

    def test_around_clamped_at_edge(self):
        window = CaptureWindow.around(10, 10, 40, 256, 256)
        assert window.row0 == 0 and window.col0 == 0
        assert window.n_rows == 50

    def test_around_needs_positive_extent(self):
        with pytest.raises(ValueError):
            CaptureWindow.around(10, 10, 0, 256, 256)

    def test_empty(self):
        assert CaptureWindow(5, 5, 0, 10).is_empty


class TestSensorArrayTiming:
    def test_hashido_serial_matches_published_exactly(self):
        spec = next(s for s in TABLE2_SPECS if s.reference == "[10]")
        modeled = SensorArray(spec).full_frame_response_ms()
        # 320*250 cells at 500 kHz = 160 ms (+ negligible setup).
        assert modeled == pytest.approx(160.0, rel=0.001)

    @pytest.mark.parametrize("spec", TABLE2_SPECS, ids=lambda s: s.name)
    def test_modeled_within_40pct_of_published(self, spec):
        modeled = SensorArray(spec).full_frame_response_ms()
        assert modeled == pytest.approx(spec.published_response_ms, rel=0.40)

    def test_published_ordering_preserved(self):
        modeled = {s.name: SensorArray(s).full_frame_response_ms()
                   for s in TABLE2_SPECS}
        published = {s.name: s.published_response_ms for s in TABLE2_SPECS}
        modeled_order = sorted(modeled, key=modeled.get)
        published_order = sorted(published, key=published.get)
        assert modeled_order == published_order

    def test_row_parallel_faster_than_serial(self):
        serial_cycles = SensorArray(
            SensorSpec("s", "x", 50.0, 256, 256, 4e6, AddressingMode.SERIAL)
        ).cycles_for(CaptureWindow(0, 256, 0, 256))
        parallel_cycles = SensorArray(FLOCK_SENSOR).cycles_for(
            CaptureWindow(0, 256, 0, 256))
        assert parallel_cycles < serial_cycles / 10

    def test_window_scales_cycles(self):
        array = SensorArray(FLOCK_SENSOR)
        small = array.cycles_for(CaptureWindow(0, 64, 0, 64))
        large = array.cycles_for(CaptureWindow(0, 256, 0, 256))
        assert small < large
        # 64 rows of (1 conversion + 4 transfer) + setup.
        assert small == SETUP_CYCLES + 64 * (1 + 64 // 16)

    def test_empty_window_costs_nothing(self):
        assert SensorArray(FLOCK_SENSOR).cycles_for(
            CaptureWindow(10, 10, 0, 10)) == 0

    def test_transfer_lanes_zero_means_free_transfer(self):
        spec = SensorSpec("s", "x", 50.0, 128, 128, 1e6,
                          AddressingMode.ROW_PARALLEL, transfer_lanes=0)
        cycles = SensorArray(spec).cycles_for(CaptureWindow(0, 128, 0, 128))
        assert cycles == SETUP_CYCLES + 128


class TestSensorArrayCapture:
    def test_capture_binarizes_against_reference(self):
        spec = SensorSpec("s", "x", 50.0, 16, 16, 1e6, AddressingMode.SERIAL)
        array = SensorArray(spec, comparator_reference=0.5)
        cell_image = np.zeros((16, 16))
        cell_image[:8] = 0.9
        result = array.capture(cell_image)
        assert result.image[:8].all()
        assert not result.image[8:].any()

    def test_capture_window_subset(self):
        spec = SensorSpec("s", "x", 50.0, 16, 16, 1e6, AddressingMode.SERIAL)
        array = SensorArray(spec)
        result = array.capture(np.ones((16, 16)), CaptureWindow(4, 8, 2, 10))
        assert result.image.shape == (4, 8)
        assert result.cells_sensed == 32

    def test_shape_mismatch_rejected(self):
        array = SensorArray(FLOCK_SENSOR)
        with pytest.raises(ValueError):
            array.capture(np.zeros((10, 10)))

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            SensorArray(FLOCK_SENSOR, comparator_reference=0.0)

    @given(st.integers(min_value=1, max_value=255),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_cycles_monotone_in_window(self, rows, cols):
        array = SensorArray(FLOCK_SENSOR)
        smaller = array.cycles_for(CaptureWindow(0, rows, 0, cols))
        larger = array.cycles_for(CaptureWindow(0, rows + 1, 0, cols + 1))
        assert smaller <= larger


class TestReadoutPolicies:
    def test_three_policies_reported(self):
        window = CaptureWindow.around(128, 128, 60, 256, 256)
        timings = compare_policies(FLOCK_SENSOR, window)
        assert {t.policy for t in timings} == set(ReadoutPolicy)

    def test_paper_claim_ordering(self):
        """Parallel addressing beats serial; selective transfer beats both."""
        window = CaptureWindow.around(128, 128, 60, 256, 256)
        by_policy = {t.policy: t for t in compare_policies(FLOCK_SENSOR, window)}
        serial = by_policy[ReadoutPolicy.FULL_SERIAL].time_ms
        parallel = by_policy[ReadoutPolicy.FULL_ROW_PARALLEL].time_ms
        selective = by_policy[ReadoutPolicy.WINDOW_SELECTIVE].time_ms
        assert selective < parallel < serial
        assert serial / selective > 10.0

    def test_selective_senses_fewer_cells(self):
        window = CaptureWindow.around(128, 128, 40, 256, 256)
        by_policy = {t.policy: t for t in compare_policies(FLOCK_SENSOR, window)}
        assert by_policy[ReadoutPolicy.WINDOW_SELECTIVE].cells_sensed \
            < by_policy[ReadoutPolicy.FULL_SERIAL].cells_sensed

    def test_policy_capture_time_consistent(self):
        window = CaptureWindow.around(128, 128, 40, 256, 256)
        t = policy_capture_time_s(FLOCK_SENSOR,
                                  ReadoutPolicy.WINDOW_SELECTIVE, window)
        by_policy = {x.policy: x for x in compare_policies(FLOCK_SENSOR, window)}
        assert t * 1000 == pytest.approx(
            by_policy[ReadoutPolicy.WINDOW_SELECTIVE].time_ms)


class TestPowerModel:
    @pytest.fixture()
    def capture(self):
        array = SensorArray(FLOCK_SENSOR)
        return array.capture(np.full((256, 256), 0.7),
                             CaptureWindow.around(128, 128, 48, 256, 256))

    def test_capture_energy_positive(self, capture):
        energy = PowerModel().capture_energy(capture)
        assert energy.sense_j > 0 and energy.transfer_j > 0
        assert energy.total_j == pytest.approx(
            energy.sense_j + energy.transfer_j + energy.leakage_j)

    def test_opportunistic_beats_always_on(self, capture):
        model = PowerModel()
        session_s = 600.0  # 10-minute session
        opportunistic = model.opportunistic_session_energy(
            [capture] * 120, session_s)  # one capture per 5 s
        always_on = model.always_on_session_energy(
            FLOCK_SENSOR, frame_time_s=1 / 30.0, session_s=session_s)
        assert always_on.total_j / opportunistic.total_j > 10.0

    def test_captures_cannot_exceed_session(self, capture):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.opportunistic_session_energy([capture] * 10, 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(sense_nj_per_cell=-1)
        with pytest.raises(ValueError):
            PowerModel().always_on_session_energy(FLOCK_SENSOR, 0.0, 60.0)

    def test_energy_breakdown_addition(self):
        from repro.hardware import EnergyBreakdown
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = EnergyBreakdown(0.5, 0.5, 0.5)
        assert (a + b).total_j == pytest.approx(7.5)
