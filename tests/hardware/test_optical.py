"""Optical sensor model (Fig. 3, section II-C)."""

import numpy as np
import pytest

from repro.fingerprint import CaptureCondition, render_impression, synthesize_master
from repro.hardware import (
    FLOCK_SENSOR,
    CaptureWindow,
    OpticalSensor,
    OpticalSensorSpec,
    SensorArray,
)


@pytest.fixture(scope="module")
def impression():
    rng = np.random.default_rng(0)
    master = synthesize_master("opt-f", rng)
    return render_impression(master, CaptureCondition(noise=0.02), rng)


class TestOpticalSpec:
    def test_thickness_dominated_by_optical_path(self):
        spec = OpticalSensorSpec()
        assert spec.module_thickness_mm > (spec.working_distance_mm
                                           + spec.sensor_distance_mm)

    def test_thinner_optics_need_shorter_path(self):
        thin = OpticalSensorSpec(working_distance_mm=8.0,
                                 sensor_distance_mm=6.0)
        assert thin.module_thickness_mm < OpticalSensorSpec().module_thickness_mm

    def test_validation(self):
        with pytest.raises(ValueError):
            OpticalSensorSpec(platen_mm=-1)
        with pytest.raises(ValueError):
            OpticalSensorSpec(vignetting=1.0)
        with pytest.raises(ValueError):
            OpticalSensorSpec(exposure_s=0)

    def test_capture_time(self):
        spec = OpticalSensorSpec(exposure_s=0.03, readout_s=0.015)
        assert spec.capture_time_s == pytest.approx(0.045)


class TestOpticalCapture:
    def test_image_range_and_shape(self, impression):
        rng = np.random.default_rng(1)
        capture = OpticalSensor().capture(impression, rng)
        assert capture.image.shape == (320, 320)
        assert (capture.image >= 0).all() and (capture.image <= 1).all()

    def test_vignetting_darkens_corners(self, impression):
        rng = np.random.default_rng(2)
        spec = OpticalSensorSpec(vignetting=0.6, defocus_blur_px=0.1)
        capture = OpticalSensor(spec).capture(impression, rng)
        centre = np.abs(capture.image[150:170, 150:170] - 0.5).mean()
        corner = np.abs(capture.image[:20, :20] - 0.5).mean()
        assert corner < centre

    def test_short_exposure_noisier(self, impression):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        long_exp = OpticalSensor(OpticalSensorSpec(exposure_s=0.060))
        short_exp = OpticalSensor(OpticalSensorSpec(exposure_s=0.008))
        capture_long = long_exp.capture(impression, rng_a)
        capture_short = short_exp.capture(impression, rng_b)
        # Compare high-frequency energy (noise) via local residual.
        from scipy import ndimage
        def noise_level(img):
            return np.abs(img - ndimage.uniform_filter(img, 3)).mean()
        assert noise_level(capture_short.image) > noise_level(capture_long.image)

    def test_paper_claim_tft_wins_on_thickness_and_speed(self, impression):
        """Section II-C: optical can't fit a thin package; TFT can."""
        spec = OpticalSensorSpec()
        tft_time = SensorArray(FLOCK_SENSOR).capture_time_s(
            CaptureWindow.full(FLOCK_SENSOR))
        assert spec.module_thickness_mm > 20.0  # cm-scale stack
        assert spec.capture_time_s > 20 * tft_time
