"""Exporters: text trees, JSON documents, Prometheus exposition."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    render_metrics_json,
    render_metrics_prometheus,
    render_metrics_text,
    render_trace_json,
    render_trace_text,
    trace_roots,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("gesture", kind="tap") as span:
        span.add_event("challenge", answered=True)
        with tracer.span("flock.match", score=0.5):
            pass
    return tracer


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("ops", help="client ops").inc(op="login")
    registry.gauge("horizon").set(12.5)
    registry.histogram("latency").observe(0.5, op="login")
    return registry


class TestTraceRoots:
    def test_normalizes_tracer_span_and_list(self):
        tracer = _sample_tracer()
        (root,) = tracer.spans
        assert trace_roots(tracer) == [root]
        assert trace_roots(root) == [root]
        assert trace_roots([root]) == [root]


class TestTraceText:
    def test_tree_shape_and_attributes(self):
        text = render_trace_text(_sample_tracer())
        lines = text.splitlines()
        assert lines[0] == "trace t0001"
        assert lines[1].startswith("  gesture ")
        assert "kind=tap" in lines[1]
        assert lines[2].lstrip().startswith("* challenge")
        assert lines[3].startswith("    flock.match ")
        assert "score=0.5" in lines[3]

    def test_empty_tracer_renders_placeholder(self):
        assert render_trace_text(Tracer()) == "no traces recorded"


class TestTraceJson:
    def test_document_round_trips_and_sorts(self):
        document = json.loads(render_trace_json(_sample_tracer()))
        (trace,) = document["traces"]
        assert trace["name"] == "gesture"
        assert trace["trace_id"] == "t0001"
        (child,) = trace["children"]
        assert child["name"] == "flock.match"
        assert child["parent_id"] == trace["span_id"]

    def test_identical_runs_export_identical_bytes(self):
        assert render_trace_json(_sample_tracer()) \
            == render_trace_json(_sample_tracer())


class TestMetricsText:
    def test_rows_and_histogram_summary(self):
        text = render_metrics_text(_sample_registry())
        assert 'horizon = 12.5' in text
        assert 'ops{op="login"} = 1' in text
        assert 'latency{op="login"} = count=1 mean=0.5' in text

    def test_empty_registry_renders_placeholder(self):
        assert render_metrics_text(MetricsRegistry()) == "no metrics recorded"


class TestMetricsJson:
    def test_snapshot_document(self):
        document = json.loads(render_metrics_json(_sample_registry()))
        assert document["metrics"]["ops"]["kind"] == "counter"
        assert document["metrics"]["horizon"]["series"][0]["value"] == 12.5


class TestMetricsPrometheus:
    def test_exposition_format(self):
        text = render_metrics_prometheus(_sample_registry())
        assert "# HELP ops client ops" in text
        assert "# TYPE ops counter" in text
        assert 'ops{op="login"} 1' in text
        assert "# TYPE latency summary" in text
        assert 'latency_count{op="login"} 1' in text
        assert 'latency_sum{op="login"} 0.5' in text
        assert 'latency{op="login",quantile="0.50"} 0.5' in text
        assert text.endswith("\n")

    def test_dotted_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("server.dispatch_calls").inc()
        text = render_metrics_prometheus(registry)
        assert "server_dispatch_calls 1" in text
