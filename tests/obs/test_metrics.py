"""MetricsRegistry instruments: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry


class TestCounter:
    def test_inc_value_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("server.dispatch_calls")
        counter.inc(endpoint="login")
        counter.inc(endpoint="login")
        counter.inc(3, endpoint="page-request")
        assert counter.value(endpoint="login") == 2
        assert counter.value(endpoint="page-request") == 3
        assert counter.value(endpoint="never") == 0
        assert counter.total() == 5

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("ops")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_series_are_sorted_by_labels(self):
        counter = MetricsRegistry().counter("ops")
        counter.inc(op="zoom")
        counter.inc(op="login")
        assert counter.labelsets() == [{"op": "login"}, {"op": "zoom"}]
        assert [value for _, value in counter.series()] == [1, 1]


class TestGauge:
    def test_set_add_value(self):
        gauge = MetricsRegistry().gauge("fleet.channel_bytes")
        gauge.set(10, direction="up")
        gauge.add(5, direction="up")
        gauge.add(-3, direction="up")
        assert gauge.value(direction="up") == 12
        assert gauge.value(direction="down") == 0
        assert gauge.value(default=None, direction="down") is None

    def test_value_types_are_preserved(self):
        # Summary renderers format ints and floats differently; moving
        # them onto the registry must not change a byte of output.
        gauge = MetricsRegistry().gauge("g")
        gauge.set(7)
        assert repr(gauge.value()) == "7"
        gauge.set(7.0)
        assert repr(gauge.value()) == "7.0"


class TestHistogram:
    def test_observe_and_exact_percentiles(self):
        histogram = MetricsRegistry().histogram("latency")
        for sample in (0.4, 0.1, 0.2, 0.3):
            histogram.observe(sample, op="login")
        series = histogram.series_for(op="login")
        assert series.count == 4
        assert series.total == pytest.approx(1.0)
        assert series.mean == pytest.approx(0.25)
        assert series.percentile(50) == 0.2
        assert series.percentile(100) == 0.4

    def test_empty_series_and_bad_inputs(self):
        histogram = MetricsRegistry().histogram("latency")
        series = histogram.series_for()
        assert series.mean == 0.0
        assert series.percentile(99) == 0.0
        with pytest.raises(ValueError):
            series.record(-0.1)
        with pytest.raises(ValueError):
            series.percentile(101)


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("ops") is registry.counter("ops")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("ops")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("ops")

    def test_instruments_listed_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("zeta")
        registry.counter("alpha")
        assert [i.name for i in registry.instruments()] == ["alpha", "zeta"]
        assert "alpha" in registry
        assert "missing" not in registry
        assert len(registry) == 2

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("ops", help="operations").inc(op="login")
        registry.histogram("latency").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["ops"] == {
            "kind": "counter", "help": "operations",
            "series": [{"labels": {"op": "login"}, "value": 1}],
        }
        (row,) = snapshot["latency"]["series"]
        assert row["value"] == {"count": 1, "mean": 0.5,
                                "p50": 0.5, "p99": 0.5}

    def test_clear_drops_series_not_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc(op="login")
        counter.clear()
        assert counter.total() == 0
        assert "ops" in registry


class TestNullRegistry:
    def test_null_registry_accepts_and_drops_everything(self):
        instrument = NULL_REGISTRY.counter("anything")
        instrument.inc(op="login")
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert instrument.value(op="login") == 0
        assert instrument.total() == 0
        assert NULL_REGISTRY.instruments() == []
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY) == 0
        assert "anything" not in NULL_REGISTRY
