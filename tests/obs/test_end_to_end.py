"""Cross-layer tracing end to end: one gesture, one tree, stable bytes.

The acceptance story for the observability substrate: running one gesture
through a live deployment yields a *single* trace tree spanning sensor
capture, FLock matching, the protocol client and the server's dispatch
decision; the wire envelope carries the trace id; and the exported JSON is
byte-identical across same-seed runs — both for the step clock and for
the fleet's virtual clock.
"""

import json

import numpy as np
import pytest

from repro.core import TrustCoordinator
from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import MobileDevice, TrustClient, UntrustedChannel, WebServer
from repro.obs import Instrumentation, render_metrics_json, render_trace_json
from repro.runtime import FleetConfig, FleetSimulation
from repro.touchgen import make_tap

LOGIN_XY = (28.0, 80.0)


def _run_one_gesture():
    """Fresh deployment, register + login + one tap; returns the pieces."""
    obs = Instrumentation.live()
    master = synthesize_master("user1-right-thumb", np.random.default_rng(70))
    template = enroll_master(master, np.random.default_rng(71))
    ca = CertificateAuthority(rng=HmacDrbg(b"ca-e2e"), key_bits=1024)
    device = MobileDevice("dev-e2e", b"seed-e2e", ca=ca)
    device.flock.enroll_local_user(template)
    server = WebServer("www.bank.com", ca, b"server-e2e", obs=obs)
    server.create_account("alice", "pw")
    channel = UntrustedChannel()
    outcome = TrustClient(device, server, channel).register(
        "alice", LOGIN_XY, master, np.random.default_rng(72))
    assert outcome.success
    coordinator = TrustCoordinator(device, server, channel, "alice", obs=obs)
    gesture = make_tap(0.0, LOGIN_XY[0], LOGIN_XY[1], 0.5, 0.1,
                       master.finger_id)
    report = coordinator.run_session([gesture], {master.finger_id: master},
                                     np.random.default_rng(73),
                                     login_master=master)
    assert report.login.success
    return obs, channel, report


class TestSingleGestureTrace:
    def test_one_gesture_yields_one_tree_capture_to_decision(self):
        obs, _, report = _run_one_gesture()
        assert report.requests_ok == 1
        (span,) = obs.tracer.find("gesture")
        names = {descendant.name for descendant in span.walk()}
        # Every layer contributes to the same tree.
        assert {"gesture", "pipeline.process", "flock.touch",
                "sensor.capture", "flock.match", "client.request",
                "server.dispatch"} <= names
        # ... and the whole tree is one trace.
        assert {descendant.trace_id for descendant in span.walk()} \
            == {span.trace_id}
        assert span.attributes["decision"] == "ok"
        (dispatch,) = span.find("server.dispatch")
        assert dispatch.attributes["decision"] == "ok"

    def test_wire_envelope_carries_the_trace_id(self):
        obs, channel, _ = _run_one_gesture()
        (span,) = obs.tracer.find("gesture")
        (record,) = channel.recorded("page-request", direction="to-server")
        assert record.envelope.trace_id == span.trace_id
        (dispatch,) = span.find("server.dispatch")
        assert dispatch.attributes["client_trace"] == span.trace_id

    def test_trace_exports_as_json(self):
        obs, _, _ = _run_one_gesture()
        document = json.loads(render_trace_json(obs.tracer))
        assert len(document["traces"]) >= 1
        names = {trace["name"] for trace in document["traces"]}
        assert "gesture" in names


class TestSameSeedByteIdentity:
    def test_gesture_scenario_is_byte_identical(self):
        first, _, _ = _run_one_gesture()
        second, _, _ = _run_one_gesture()
        assert render_trace_json(first.tracer) \
            == render_trace_json(second.tracer)
        assert render_metrics_json(first.metrics) \
            == render_metrics_json(second.metrics)

    def test_fleet_virtual_clock_is_byte_identical(self):
        def run():
            obs = Instrumentation.live()
            config = FleetConfig(n_devices=2, n_shards=1, seed=7,
                                 requests_per_device=1)
            FleetSimulation(config, obs=obs).run()
            return obs

        first, second = run(), run()
        first_json = render_trace_json(first.tracer)
        assert first_json == render_trace_json(second.tracer)
        assert render_metrics_json(first.metrics) \
            == render_metrics_json(second.metrics)
        # Virtual-clock timestamps made it onto the spans.
        loop_spans = first.tracer.find("loop.event")
        assert loop_spans
        assert any(span.start_time > 0 for span in loop_spans)
