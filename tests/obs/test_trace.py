"""Tracer and span mechanics: nesting, ids, clocks, failure handling."""

import pytest

from repro.obs import NOOP, NULL_TRACER, Instrumentation, Tracer


class TestSpanNesting:
    def test_nested_spans_build_one_tree(self):
        tracer = Tracer()
        with tracer.span("gesture") as root:
            with tracer.span("pipeline.process"):
                with tracer.span("sensor.capture"):
                    pass
            with tracer.span("client.request"):
                pass
        assert [span.name for span in root.walk()] \
            == ["gesture", "pipeline.process", "sensor.capture",
                "client.request"]
        assert tracer.spans == [root]
        assert root.parent_id is None
        assert all(child.parent_id == root.span_id
                   for child in root.children)

    def test_sibling_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [span.trace_id for span in tracer.spans] == ["t0001", "t0002"]

    def test_children_share_the_root_trace_id(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                assert tracer.current_trace_id == "t0001"
        (root,) = tracer.spans
        assert {span.trace_id for span in root.walk()} == {"t0001"}

    def test_span_ids_are_sequential(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [span.span_id for root in tracer.spans
                for span in root.walk()] == [1, 2, 3]


class TestClocks:
    def test_default_clock_is_a_step_counter(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        (root,) = tracer.spans
        (child,) = root.children
        assert root.start_time == 0
        assert child.start_time == 1
        assert child.end_time == 2
        assert root.end_time == 3

    def test_bind_clock_adopts_external_time(self):
        now = {"t": 100.0}
        tracer = Tracer()
        tracer.bind_clock(lambda: now["t"])
        with tracer.span("event") as span:
            now["t"] = 107.5
        assert span.start_time == 100.0
        assert span.end_time == 107.5
        assert span.duration == 7.5


class TestRecording:
    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("gesture", kind="tap") as span:
            span.set_attribute("risk", 0.25)
            span.add_event("challenge", answered=True)
        assert span.attributes == {"kind": "tap", "risk": 0.25}
        (event,) = span.events
        assert event.name == "challenge"
        assert event.attributes == {"answered": True}

    def test_tracer_shortcuts_target_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.set_attribute("depth", 2)
                tracer.event("tick")
        assert inner.attributes == {"depth": 2}
        assert [event.name for event in inner.events] == ["tick"]

    def test_shortcuts_outside_any_span_are_dropped(self):
        tracer = Tracer()
        tracer.set_attribute("lost", 1)
        tracer.event("lost")
        assert tracer.spans == []
        assert tracer.current_span is None
        assert tracer.current_trace_id is None


class TestFailures:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert span.attributes["error.type"] == "ValueError"
        assert span.end_time is not None

    def test_exception_unwinds_every_open_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer") as outer:
                with tracer.span("inner"):
                    raise RuntimeError("deep")
        assert outer.status == "error"
        assert all(span.end_time is not None for span in outer.walk())
        assert tracer.current_span is None


class TestQueriesAndReset:
    def test_find_spans_across_traces(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("gesture"):
                with tracer.span("flock.match"):
                    pass
        assert len(tracer.find("flock.match")) == 2
        assert tracer.find("nothing") == []

    def test_reset_restarts_all_counters(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        with tracer.span("b") as span:
            pass
        assert span.trace_id == "t0001"
        assert span.span_id == 1
        assert span.start_time == 0


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        first = NULL_TRACER.span("anything", risk=1.0)
        second = NULL_TRACER.span("else")
        assert first is second  # one reusable span, no allocation
        with first as span:
            span.set_attribute("dropped", True)
            span.add_event("dropped")
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.find("anything") == []
        assert not NULL_TRACER.enabled

    def test_noop_bundle_is_disabled_and_deepcopy_safe(self):
        import copy

        assert not NOOP.enabled
        assert copy.deepcopy(NOOP) is NOOP
        live = Instrumentation.live()
        assert live.enabled
        assert copy.deepcopy(live) is live
