"""The adversary library vs TRUST and vs the cookie baseline."""

import numpy as np
import pytest

from repro.attacks import (
    certificate_substitution_attack,
    evasion_attack,
    fake_touch_attack,
    key_substitution_attack,
    replay_cookie_request,
    replay_trust_traffic,
    takeover_attack,
    tamper_risk_attack,
    ui_spoof_attack,
    unlock_attack,
)
from repro.baselines import CookieWebServer
from repro.core import LocalIdentityManager
from repro.eval import LOGIN_BUTTON_XY, standard_deployment
from repro.net import login, session_request
from repro.touchgen import UserTouchModel


@pytest.fixture(scope="module")
def world():
    return standard_deployment(seed=77)


@pytest.fixture()
def manager(world):
    return LocalIdentityManager(flock=world.device.flock,
                                panel=world.device.panel,
                                unlock_button_xy=LOGIN_BUTTON_XY)


def _unlock(manager, master, rng):
    for i in range(6):
        if manager.try_unlock(master, rng, time_s=i * 0.4):
            return True
    return False


class TestPhysicalAttacks:
    def test_impostor_unlock_blocked(self, manager, world):
        result = unlock_attack(manager, world.impostor_master,
                               np.random.default_rng(0), attempts=15)
        assert not result.succeeded
        assert result.detected

    def test_unlock_attack_needs_locked_device(self, manager, world):
        assert _unlock(manager, world.user_master, np.random.default_rng(1))
        with pytest.raises(ValueError):
            unlock_attack(manager, world.impostor_master,
                          np.random.default_rng(2))

    def test_takeover_detected(self, manager, world):
        rng = np.random.default_rng(3)
        assert _unlock(manager, world.user_master, rng)
        behaviour = UserTouchModel("eve", world.impostor_master.finger_id)
        result = takeover_attack(manager, world.impostor_master, behaviour,
                                 rng, max_touches=200)
        assert not result.succeeded
        assert result.detected
        assert result.evidence["touches_to_lock"] is not None
        assert result.evidence["touches_to_lock"] <= 200

    def test_evasion_attack_contained(self, manager, world):
        rng = np.random.default_rng(4)
        assert _unlock(manager, world.user_master, rng)
        result = evasion_attack(manager, world.impostor_master, rng,
                                max_touches=120)
        # Either the window locked the device, or the min-touch-time rule
        # starved the attacker of accepted interactions.
        if result.detected:
            assert result.evidence["touches_to_lock"] is not None
        else:
            assert result.evidence["useful_actions"] <= 120 * 0.7


class TestChannelAttacks:
    def test_trust_rejects_request_replay(self, world):
        rng = np.random.default_rng(5)
        channel = world.fresh_channel()
        outcome = login(world.device, world.server, channel, world.account,
                        LOGIN_BUTTON_XY, world.user_master, rng)
        assert outcome.success, outcome.reason
        for _ in range(3):
            result = session_request(world.device, world.server, channel,
                                     outcome.session, risk=0.0, rng=rng)
            assert result.success
        replay = replay_trust_traffic(world.server, channel, "page-request")
        assert not replay.succeeded
        assert replay.detected
        assert replay.evidence["accepted"] == 0
        world.device.flock.close_session(world.server.domain)

    def test_trust_rejects_login_replay(self, world):
        rng = np.random.default_rng(6)
        channel = world.fresh_channel()
        outcome = login(world.device, world.server, channel, world.account,
                        LOGIN_BUTTON_XY, world.user_master, rng)
        assert outcome.success
        world.device.flock.close_session(world.server.domain)
        replay = replay_trust_traffic(world.server, channel, "login-submit")
        assert not replay.succeeded

    def test_cookie_baseline_falls_to_replay(self):
        server = CookieWebServer("www.legacy.com", b"legacy")
        server.create_account("alice", "hunter2")
        cookie = server.login("alice", "hunter2").fields["cookie"]
        result = replay_cookie_request(server, cookie, n_replays=5)
        assert result.succeeded
        assert not result.detected
        assert result.evidence["accepted"] == 5

    def test_mitm_risk_laundering_blocked(self, world):
        result = tamper_risk_attack(world.device, world.server,
                                    world.account, LOGIN_BUTTON_XY,
                                    world.user_master,
                                    np.random.default_rng(7))
        assert not result.succeeded
        assert result.detected

    def test_mitm_key_substitution_blocked(self, world):
        # A second server + account keeps this registration independent.
        from repro.net import WebServer
        server = WebServer("www.victim.example", world.ca, b"victim-seed")
        server.create_account("alice", "pw")
        result = key_substitution_attack(world.device, server, "alice",
                                         LOGIN_BUTTON_XY, world.user_master,
                                         np.random.default_rng(8))
        assert not result.succeeded
        assert not result.evidence["attacker_bound"]
        world.device.flock.unbind_service("www.victim.example")

    def test_mitm_cert_substitution_blocked(self, world):
        from repro.net import WebServer
        server = WebServer("www.victim2.example", world.ca, b"victim2-seed")
        server.create_account("alice", "pw")
        result = certificate_substitution_attack(
            world.device, server, "alice", LOGIN_BUTTON_XY,
            world.user_master, np.random.default_rng(9))
        assert not result.succeeded
        assert result.detected


class TestMalwareAttacks:
    def test_ui_spoof_flagged_by_frame_audit(self, world):
        result = ui_spoof_attack(world.device, world.server, world.account,
                                 LOGIN_BUTTON_XY, world.user_master,
                                 np.random.default_rng(10))
        assert result.detected
        assert not result.succeeded

    def test_fake_touch_flood_terminated(self, world):
        result = fake_touch_attack(world.device, world.server, world.account,
                                   LOGIN_BUTTON_XY, world.user_master,
                                   np.random.default_rng(11))
        assert result.detected
        assert not result.succeeded
        assert result.evidence["accepted_before_termination"] < 30

    def test_malware_never_sees_secrets(self, world):
        """Exfiltrated traffic contains no private keys or templates."""
        from repro.net import Malware
        malware = Malware()
        world.device.browser.infect(malware)
        channel = world.fresh_channel()
        rng = np.random.default_rng(12)
        outcome = login(world.device, world.server, channel, world.account,
                        LOGIN_BUTTON_XY, world.user_master, rng)
        world.device.browser.malware = None
        assert outcome.success
        record = world.device.flock.flash.record(world.server.domain)
        private_d = record.key_pair.d.to_bytes(
            (record.key_pair.d.bit_length() + 7) // 8, "big")
        template_bytes = record.fingerprint.to_bytes()
        session_key = world.device.flock._session_key(world.server.domain)
        for envelope in malware.exfiltrated:
            for value in envelope.fields.values():
                if isinstance(value, bytes):
                    assert private_d not in value
                    assert template_bytes[:64] not in value
                    assert session_key not in value
        world.device.flock.close_session(world.server.domain)
