"""HMAC (RFC 4231), HKDF (RFC 5869), constant-time compare, and HMAC-DRBG."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    HMAC,
    HmacDrbg,
    constant_time_equal,
    hkdf_sha256,
    hmac_md5,
    hmac_sha256,
)


class TestHmacSha256:
    def test_rfc4231_case1(self):
        key = b"\x0b" * 20
        assert hmac_sha256(key, b"Hi There").hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case2(self):
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_rfc4231_case3(self):
        key = b"\xaa" * 20
        data = b"\xdd" * 50
        assert hmac_sha256(key, data).hex() == (
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        )

    def test_rfc4231_long_key(self):
        # Case 6: key longer than the block size gets hashed first.
        key = b"\xaa" * 131
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha256(key, msg).hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )

    @given(st.binary(min_size=1, max_size=100), st.binary(max_size=200))
    def test_matches_stdlib(self, key, msg):
        expected = stdlib_hmac.new(key, msg, hashlib.sha256).hexdigest()
        assert hmac_sha256(key, msg).hex() == expected

    def test_incremental_api(self):
        tag = HMAC(b"key").update(b"ab").update(b"cd").digest()
        assert tag == hmac_sha256(b"key", b"abcd")

    def test_verify_accepts_and_rejects(self):
        mac = HMAC(b"key", b"message")
        tag = hmac_sha256(b"key", b"message")
        assert mac.verify(tag)
        bad = bytes([tag[0] ^ 1]) + tag[1:]
        assert not HMAC(b"key", b"message").verify(bad)

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            HMAC("key")  # type: ignore[arg-type]


class TestHmacMd5:
    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=128))
    def test_matches_stdlib(self, key, msg):
        expected = stdlib_hmac.new(key, msg, hashlib.md5).digest()
        assert hmac_md5(key, msg) == expected


class TestHkdf:
    def test_rfc5869_case1(self):
        ikm = b"\x0b" * 22
        salt = bytes(range(13))
        info = bytes(range(0xF0, 0xFA))
        okm = hkdf_sha256(ikm, 42, salt=salt, info=info)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case3_no_salt_no_info(self):
        okm = hkdf_sha256(b"\x0b" * 22, 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_prefix_property(self):
        long = hkdf_sha256(b"ikm", 64, info=b"x")
        short = hkdf_sha256(b"ikm", 32, info=b"x")
        assert long[:32] == short

    def test_distinct_info_distinct_keys(self):
        assert hkdf_sha256(b"ikm", 32, info=b"enc") != hkdf_sha256(b"ikm", 32, info=b"mac")

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf_sha256(b"ikm", 0)
        with pytest.raises(ValueError):
            hkdf_sha256(b"ikm", 255 * 32 + 1)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_same_length(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")

    def test_type_error(self):
        with pytest.raises(TypeError):
            constant_time_equal("abc", b"abc")  # type: ignore[arg-type]


class TestHmacDrbg:
    def test_deterministic(self):
        a = HmacDrbg(b"seed").generate(64)
        b = HmacDrbg(b"seed").generate(64)
        assert a == b

    def test_personalization_separates_streams(self):
        a = HmacDrbg(b"seed", personalization=b"device-1").generate(32)
        b = HmacDrbg(b"seed", personalization=b"device-2").generate(32)
        assert a != b

    def test_sequential_outputs_differ(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.generate(32) != drbg.generate(32)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        a.reseed(b"fresh entropy")
        assert a.generate(32) != b.generate(32)

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"")

    def test_generate_zero_bytes(self):
        assert HmacDrbg(b"seed").generate(0) == b""

    def test_request_limit(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"seed").generate(HmacDrbg.MAX_REQUEST + 1)

    @given(st.integers(min_value=1, max_value=256))
    def test_random_int_in_range(self, bits):
        drbg = HmacDrbg(b"seed")
        for _ in range(5):
            value = drbg.random_int(bits)
            assert 0 <= value < (1 << bits)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_random_below_in_range(self, bound):
        drbg = HmacDrbg(b"seed")
        for _ in range(5):
            assert 0 <= drbg.random_below(bound) < bound

    def test_random_range_bounds(self):
        drbg = HmacDrbg(b"seed")
        values = {drbg.random_range(10, 13) for _ in range(100)}
        assert values <= {10, 11, 12}
        assert len(values) == 3  # all values reachable in 100 draws w.h.p.

    def test_random_range_empty(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"seed").random_range(5, 5)

    def test_byte_value_distribution_roughly_uniform(self):
        data = HmacDrbg(b"uniformity").generate(4096)
        counts = [0] * 256
        for byte in data:
            counts[byte] += 1
        # Expected 16 per bucket; chi-square sanity bound, generous.
        chi2 = sum((c - 16) ** 2 / 16 for c in counts)
        assert chi2 < 400


class TestHkdfLongVectors:
    def test_rfc5869_case2_long_inputs(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        okm = hkdf_sha256(ikm, 82, salt=salt, info=info)
        assert okm.hex() == (
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87"
        )
