"""Cross-backend equivalence: every registered engine, identical bytes.

The registry contract (DESIGN.md §11) says a backend may only change
*wall-clock*, never bytes: digests, MAC tags, DRBG streams, signatures,
ciphertexts and plaintexts must agree bit-for-bit across engines, and a
full protocol conversation run under any backend must produce the same
wire transcript.  These tests enforce that contract over every name in
``available_backends()`` so a third backend is held to the same bar the
accelerated one is.
"""

import random

import numpy as np
import pytest

from repro.crypto import available_backends, get_backend
from repro.crypto.rng import HmacDrbg

REFERENCE = get_backend("reference")

#: Every non-reference engine, compared pairwise against the reference.
OTHERS = [name for name in available_backends() if name != "reference"]

_rand = random.Random(0xB10C)

#: Randomized byte strings spanning block boundaries of every primitive.
MESSAGES = [b"", b"a", b"abc"] + [
    _rand.randbytes(_rand.randrange(1, 400)) for _ in range(12)
]


@pytest.fixture(scope="module")
def keypair():
    """One RSA keypair shared by the whole module (keygen is the slow
    part and is itself checked for cross-backend agreement below)."""
    return REFERENCE.generate_keypair(HmacDrbg(b"equivalence-key"), bits=1024)


@pytest.fixture(params=OTHERS, scope="module")
def other(request):
    return get_backend(request.param)


class TestPrimitiveAgreement:
    """Digest/MAC/KDF/DRBG/stream outputs agree byte-for-byte."""

    def test_digests_agree(self, other):
        for data in MESSAGES:
            assert other.sha256(data) == REFERENCE.sha256(data)
            assert other.sha256_hex(data) == REFERENCE.sha256_hex(data)
            assert other.md5(data) == REFERENCE.md5(data)
            assert other.md5_hex(data) == REFERENCE.md5_hex(data)

    def test_incremental_digests_agree(self, other):
        ref, fast = REFERENCE.new_sha256(), other.new_sha256()
        for data in MESSAGES:
            ref.update(data)
            fast.update(data)
            assert fast.digest() == ref.digest()

    def test_macs_and_kdf_agree(self, other):
        for i, data in enumerate(MESSAGES):
            key = bytes([i]) * 16
            assert (other.hmac_sha256(key, data)
                    == REFERENCE.hmac_sha256(key, data))
            assert other.hmac_md5(key, data) == REFERENCE.hmac_md5(key, data)
            assert (other.hkdf_sha256(key, 42, salt=data[:8], info=data)
                    == REFERENCE.hkdf_sha256(key, 42, salt=data[:8],
                                             info=data))

    def test_drbg_streams_agree(self, other):
        ref = REFERENCE.make_drbg(b"stream-seed", personalization=b"equiv")
        fast = other.make_drbg(b"stream-seed", personalization=b"equiv")
        for draw in (1, 15, 32, 33, 64, 500):
            assert fast.generate(draw) == ref.generate(draw)
        ref.reseed(b"more entropy")
        fast.reseed(b"more entropy")
        assert fast.generate(48) == ref.generate(48)

    def test_chacha20_agrees(self, other):
        key, nonce = bytes(range(32)), bytes(range(12))
        for counter in (1, 7):
            for data in MESSAGES:
                expected = REFERENCE.chacha20_xor(key, nonce, data,
                                                  initial_counter=counter)
                got = other.chacha20_xor(key, nonce, data,
                                         initial_counter=counter)
                assert got == expected
                # XOR stream: applying it twice round-trips.
                assert other.chacha20_xor(key, nonce, got,
                                          initial_counter=counter) == data

    def test_session_ciphers_interoperate(self, other):
        ref = REFERENCE.make_session_cipher(b"K" * 32)
        fast = other.make_session_cipher(b"K" * 32)
        for data in MESSAGES:
            sealed_ref = ref.encrypt(data, associated_data=b"ad")
            sealed_fast = fast.encrypt(data, associated_data=b"ad")
            assert sealed_fast == sealed_ref
            assert fast.decrypt(sealed_ref, associated_data=b"ad") == data


class TestRsaAgreement:
    """Key generation, signatures and envelopes agree byte-for-byte."""

    def test_keygen_consumes_drbg_identically(self, other):
        ref_key = REFERENCE.generate_keypair(HmacDrbg(b"kg"), bits=512)
        fast_key = other.generate_keypair(HmacDrbg(b"kg"), bits=512)
        assert fast_key.n == ref_key.n
        assert fast_key.d == ref_key.d
        assert fast_key.public_key == ref_key.public_key

    def test_signatures_agree_and_cross_verify(self, other, keypair):
        for message in MESSAGES:
            sig_ref = REFERENCE.rsa_sign(keypair, message)
            sig_fast = other.rsa_sign(keypair, message)
            assert sig_fast == sig_ref
            assert REFERENCE.rsa_verify(keypair.public_key, message, sig_fast)
            assert other.rsa_verify(keypair.public_key, message, sig_ref)
            assert not other.rsa_verify(keypair.public_key,
                                        message + b"x", sig_ref)

    def test_batch_verify_matches_elementwise(self, other, keypair):
        public = keypair.public_key
        checks, expected = [], []
        for i, message in enumerate(MESSAGES):
            signature = REFERENCE.rsa_sign(keypair, message)
            if i % 3 == 0:  # corrupt every third tuple
                signature = bytes([signature[0] ^ 1]) + signature[1:]
            checks.append((public, message, signature))
            expected.append(REFERENCE.rsa_verify(public, message, signature))
        assert other.rsa_verify_batch(checks) == expected
        assert REFERENCE.rsa_verify_batch(checks) == expected

    def test_encrypt_decrypt_agree(self, other, keypair):
        public = keypair.public_key
        for i, message in enumerate(MESSAGES):
            plaintext = message[:32]
            ct_ref = REFERENCE.rsa_encrypt(public, plaintext,
                                           HmacDrbg(bytes([i]) + b"pad"))
            ct_fast = other.rsa_encrypt(public, plaintext,
                                        HmacDrbg(bytes([i]) + b"pad"))
            # Identical DRBG draws => identical padding => identical bytes.
            assert ct_fast == ct_ref
            assert REFERENCE.rsa_decrypt(keypair, ct_fast) == plaintext
            assert other.rsa_decrypt(keypair, ct_ref) == plaintext


def _run_conversation(backend_name: str):
    """One register -> login -> requests conversation; returns its wire
    transcript as ``(direction, encoded bytes)`` pairs."""
    from repro.crypto import CertificateAuthority
    from repro.eval import LOGIN_BUTTON_XY
    from repro.fingerprint import enroll_master, synthesize_master
    from repro.net import MobileDevice, TrustClient, UntrustedChannel, WebServer
    from repro.net.message import encode_envelope

    backend = get_backend(backend_name)
    ca = CertificateAuthority(rng=backend.make_drbg(b"equiv-ca"),
                              key_bits=1024, backend=backend)
    master = synthesize_master("equiv-thumb", np.random.default_rng(7))
    template = enroll_master(master, np.random.default_rng(8))
    device = MobileDevice("equiv-device", b"equiv-device-seed", ca=ca,
                          backend=backend)
    device.flock.enroll_local_user(template)
    server = WebServer("www.equiv.example", ca, b"equiv-server",
                       backend=backend)
    server.create_account("alice", "correct horse battery staple")
    channel = UntrustedChannel()
    client = TrustClient(device, server, channel)
    rng = np.random.default_rng(9)

    outcome = client.register("alice", LOGIN_BUTTON_XY, master, rng)
    assert outcome.success, outcome.reason
    login = client.login("alice", LOGIN_BUTTON_XY, master, rng)
    assert login.success, login.reason
    for index in range(3):
        result = client.request(login.session, risk=0.0, rng=rng,
                                touch_xy=LOGIN_BUTTON_XY, master=master,
                                time_s=float(index))
        assert result.success, result.reason
    device.flock.close_session(server.domain)
    return [(record.direction, encode_envelope(record.envelope))
            for record in channel.log]


class TestTranscriptByteIdentity:
    """The whole conversation — every envelope, both directions — is
    byte-identical whichever engine runs under it."""

    def test_full_protocol_transcript_is_backend_invariant(self):
        reference_transcript = _run_conversation("reference")
        assert reference_transcript, "conversation produced no traffic"
        for name in OTHERS:
            transcript = _run_conversation(name)
            assert len(transcript) == len(reference_transcript)
            for i, (want, got) in enumerate(zip(reference_transcript,
                                                transcript)):
                assert got == want, (
                    f"backend {name!r} diverged at envelope {i}: "
                    f"{got[0]} vs {want[0]}")
