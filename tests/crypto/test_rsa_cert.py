"""RSA keygen/sign/encrypt, ChaCha20 vectors, SessionCipher, certificates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    AuthenticationError,
    Certificate,
    CertificateAuthority,
    CertificateError,
    DecryptionError,
    HmacDrbg,
    RsaPublicKey,
    SessionCipher,
    chacha20_block,
    chacha20_xor,
    generate_keypair,
    generate_prime,
    is_probable_prime,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(HmacDrbg(b"rsa-test-seed"), bits=1024)


@pytest.fixture(scope="module")
def rng():
    return HmacDrbg(b"ops-seed")


class TestPrimes:
    def test_small_primes(self):
        rng = HmacDrbg(b"p")
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = HmacDrbg(b"p")
        for n in (0, 1, 4, 9, 15, 561, 7917):  # 561 is a Carmichael number
            assert not is_probable_prime(n, rng)

    def test_generated_prime_has_exact_bits(self):
        rng = HmacDrbg(b"p")
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert p % 2 == 1

    def test_tiny_request_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(8, HmacDrbg(b"p"))


class TestRsa:
    def test_modulus_size(self, keypair):
        assert keypair.n.bit_length() == 1024
        assert keypair.p != keypair.q
        assert keypair.p * keypair.q == keypair.n

    def test_sign_verify_roundtrip(self, keypair):
        sig = keypair.sign(b"attest this frame")
        assert keypair.public_key.verify(b"attest this frame", sig)

    def test_verify_rejects_wrong_message(self, keypair):
        sig = keypair.sign(b"message A")
        assert not keypair.public_key.verify(b"message B", sig)

    def test_verify_rejects_bitflip(self, keypair):
        sig = bytearray(keypair.sign(b"msg"))
        sig[10] ^= 0x01
        assert not keypair.public_key.verify(b"msg", bytes(sig))

    def test_verify_rejects_wrong_length(self, keypair):
        assert not keypair.public_key.verify(b"msg", b"\x00" * 10)

    def test_verify_rejects_other_key(self, keypair):
        other = generate_keypair(HmacDrbg(b"other-seed"), bits=1024)
        sig = keypair.sign(b"msg")
        assert not other.public_key.verify(b"msg", sig)

    def test_encrypt_decrypt_roundtrip(self, keypair, rng):
        ct = keypair.public_key.encrypt(b"session-key-material", rng)
        assert keypair.decrypt(ct) == b"session-key-material"

    def test_encrypt_is_randomized(self, keypair, rng):
        a = keypair.public_key.encrypt(b"same plaintext", rng)
        b = keypair.public_key.encrypt(b"same plaintext", rng)
        assert a != b

    def test_decrypt_rejects_tampering(self, keypair, rng):
        ct = bytearray(keypair.public_key.encrypt(b"secret", rng))
        ct[0] ^= 0xFF
        with pytest.raises(DecryptionError):
            keypair.decrypt(bytes(ct))

    def test_plaintext_size_limit(self, keypair, rng):
        limit = keypair.byte_length - 11
        keypair.public_key.encrypt(b"x" * limit, rng)  # exactly at limit: fine
        with pytest.raises(ValueError):
            keypair.public_key.encrypt(b"x" * (limit + 1), rng)

    def test_public_key_serialization_roundtrip(self, keypair):
        pk = keypair.public_key
        assert RsaPublicKey.from_bytes(pk.to_bytes()) == pk

    def test_fingerprint_stable_and_distinct(self, keypair):
        other = generate_keypair(HmacDrbg(b"fp-seed"), bits=1024)
        assert keypair.public_key.fingerprint() == keypair.public_key.fingerprint()
        assert keypair.public_key.fingerprint() != other.public_key.fingerprint()

    def test_keygen_deterministic_from_seed(self):
        a = generate_keypair(HmacDrbg(b"same"), bits=1024)
        b = generate_keypair(HmacDrbg(b"same"), bits=1024)
        assert a == b

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(HmacDrbg(b"x"), bits=1023)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=100))
    def test_sign_verify_property(self, message):
        key = generate_keypair(HmacDrbg(b"prop-seed"), bits=1024)
        assert key.public_key.verify(message, key.sign(message))


class TestChaCha20:
    def test_rfc8439_block_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        assert block[:16].hex() == "10f1e7e4d13b5915500fdd1fa32071c4"

    def test_rfc8439_encryption_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ct = chacha20_xor(key, nonce, plaintext, initial_counter=1)
        assert ct[:16].hex() == "6e2e359a2568f98041ba0728dd0d6981"
        assert chacha20_xor(key, nonce, ct, initial_counter=1) == plaintext

    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 0, b"\x00" * 12)

    def test_bad_nonce_size(self):
        with pytest.raises(ValueError):
            chacha20_block(b"\x00" * 32, 0, b"\x00" * 8)

    @given(st.binary(max_size=300))
    def test_xor_is_involution(self, data):
        key, nonce = b"\x11" * 32, b"\x22" * 12
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data


class TestSessionCipher:
    def test_roundtrip(self):
        tx, rx = SessionCipher(b"k" * 32), SessionCipher(b"k" * 32)
        blob = tx.encrypt(b"page request", associated_data=b"hdr")
        assert rx.decrypt(blob, associated_data=b"hdr") == b"page request"

    def test_tamper_detected(self):
        tx, rx = SessionCipher(b"k" * 32), SessionCipher(b"k" * 32)
        blob = bytearray(tx.encrypt(b"payload"))
        blob[SessionCipher.NONCE_SIZE] ^= 0x01
        with pytest.raises(AuthenticationError):
            rx.decrypt(bytes(blob))

    def test_wrong_associated_data_detected(self):
        tx, rx = SessionCipher(b"k" * 32), SessionCipher(b"k" * 32)
        blob = tx.encrypt(b"payload", associated_data=b"session-1")
        with pytest.raises(AuthenticationError):
            rx.decrypt(blob, associated_data=b"session-2")

    def test_wrong_key_detected(self):
        blob = SessionCipher(b"k" * 32).encrypt(b"payload")
        with pytest.raises(AuthenticationError):
            SessionCipher(b"j" * 32).decrypt(blob)

    def test_nonce_advances(self):
        tx = SessionCipher(b"k" * 32)
        a = tx.encrypt(b"same")
        b = tx.encrypt(b"same")
        assert a[:SessionCipher.NONCE_SIZE] != b[:SessionCipher.NONCE_SIZE]
        assert a != b

    def test_short_blob_rejected(self):
        with pytest.raises(AuthenticationError):
            SessionCipher(b"k" * 32).decrypt(b"tiny")

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SessionCipher(b"short")

    @given(st.binary(max_size=500), st.binary(max_size=50))
    def test_roundtrip_property(self, payload, aad):
        tx, rx = SessionCipher(b"s" * 32), SessionCipher(b"s" * 32)
        assert rx.decrypt(tx.encrypt(payload, aad), aad) == payload


class TestCertificates:
    @pytest.fixture(scope="class")
    def ca(self):
        return CertificateAuthority(rng=HmacDrbg(b"ca-test"), key_bits=1024)

    @pytest.fixture(scope="class")
    def server_key(self):
        return generate_keypair(HmacDrbg(b"server-test"), bits=1024)

    def test_issue_and_verify(self, ca, server_key):
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key, now=100)
        cert.verify(ca.public_key, now=200, expected_role="web-server")

    def test_wrong_role_rejected(self, ca, server_key):
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        with pytest.raises(CertificateError, match="role"):
            cert.verify(ca.public_key, now=0, expected_role="flock-device")

    def test_expired_rejected(self, ca, server_key):
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key,
                        now=0, lifetime=10)
        with pytest.raises(CertificateError, match="validity"):
            cert.verify(ca.public_key, now=11)

    def test_not_yet_valid_rejected(self, ca, server_key):
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key, now=100)
        with pytest.raises(CertificateError):
            cert.verify(ca.public_key, now=50)

    def test_forged_subject_rejected(self, ca, server_key):
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        forged = Certificate(
            serial=cert.serial, subject="www.evil.com", role=cert.role,
            public_key=cert.public_key, not_before=cert.not_before,
            not_after=cert.not_after, issuer=cert.issuer,
            signature=cert.signature,
        )
        with pytest.raises(CertificateError, match="signature"):
            forged.verify(ca.public_key, now=0)

    def test_substituted_key_rejected(self, ca, server_key):
        attacker_key = generate_keypair(HmacDrbg(b"attacker"), bits=1024)
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        forged = Certificate(
            serial=cert.serial, subject=cert.subject, role=cert.role,
            public_key=attacker_key.public_key, not_before=cert.not_before,
            not_after=cert.not_after, issuer=cert.issuer,
            signature=cert.signature,
        )
        with pytest.raises(CertificateError, match="signature"):
            forged.verify(ca.public_key, now=0)

    def test_wrong_ca_rejected(self, ca, server_key):
        rogue = CertificateAuthority(rng=HmacDrbg(b"rogue"), key_bits=1024)
        cert = rogue.issue("www.xyz.com", "web-server", server_key.public_key)
        with pytest.raises(CertificateError, match="signature"):
            cert.verify(ca.public_key, now=0)

    def test_revocation(self, ca, server_key):
        cert = ca.issue("revoke.me", "web-server", server_key.public_key)
        ca.check(cert, now=0)
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert.serial)
        with pytest.raises(CertificateError, match="revoked"):
            ca.check(cert, now=0)

    def test_revoke_unknown_serial(self, ca):
        with pytest.raises(KeyError):
            ca.revoke(999_999)

    def test_serials_increase(self, ca, server_key):
        a = ca.issue("a", "web-server", server_key.public_key)
        b = ca.issue("b", "web-server", server_key.public_key)
        assert b.serial > a.serial

    def test_unknown_role_rejected(self, ca, server_key):
        with pytest.raises(ValueError):
            ca.issue("x", "toaster", server_key.public_key)


class TestCertificateParserRobustness:
    """Regression: wire corruption must raise CertificateError, never leak
    IndexError/UnicodeDecodeError out of the parser (found by the protocol
    fuzzer)."""

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash(self, data):
        try:
            Certificate.from_bytes(data)
        except CertificateError:
            pass  # the only acceptable failure mode

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=255))
    def test_bitflipped_real_certificate_never_crashes(self, position, mask):
        ca = CertificateAuthority(rng=HmacDrbg(b"robust-ca"), key_bits=1024)
        key = generate_keypair(HmacDrbg(b"robust-key"), bits=1024)
        blob = bytearray(ca.issue("host", "web-server", key.public_key)
                         .to_bytes())
        blob[position % len(blob)] ^= (mask or 1)
        try:
            cert = Certificate.from_bytes(bytes(blob))
            # If it parsed, verification must still reject forgery...
            cert.verify(ca.public_key, now=0)
        except CertificateError:
            pass
