"""SHA-256 and MD5 against published test vectors and stdlib hashlib."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto import MD5, SHA256, md5_hex, sha256_hex


class TestSha256Vectors:
    def test_empty(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256_hex(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256_hex(msg) == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_million_a(self):
        digest = sha256_hex(b"a" * 1_000_000)
        assert digest == (
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )

    def test_exact_block_boundary(self):
        for size in (55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = bytes(range(256))[:size] * 1
            assert sha256_hex(data) == hashlib.sha256(data).hexdigest()


class TestSha256Api:
    def test_incremental_equals_oneshot(self):
        h = SHA256()
        h.update(b"hello ")
        h.update(b"world")
        assert h.hexdigest() == sha256_hex(b"hello world")

    def test_digest_does_not_consume_state(self):
        h = SHA256(b"abc")
        first = h.digest()
        second = h.digest()
        assert first == second
        h.update(b"def")
        assert h.hexdigest() == sha256_hex(b"abcdef")

    def test_copy_is_independent(self):
        h = SHA256(b"abc")
        clone = h.copy()
        clone.update(b"def")
        assert h.hexdigest() == sha256_hex(b"abc")
        assert clone.hexdigest() == sha256_hex(b"abcdef")

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            SHA256().update("not bytes")  # type: ignore[arg-type]

    def test_accepts_bytearray_and_memoryview(self):
        assert SHA256(bytearray(b"abc")).hexdigest() == sha256_hex(b"abc")
        assert SHA256(memoryview(b"abc")).hexdigest() == sha256_hex(b"abc")

    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert sha256_hex(data) == hashlib.sha256(data).hexdigest()

    @given(st.binary(max_size=150), st.binary(max_size=150))
    def test_split_update_invariant(self, a, b):
        h = SHA256()
        h.update(a)
        h.update(b)
        assert h.digest() == SHA256(a + b).digest()


class TestMd5Vectors:
    """RFC 1321 appendix A.5 test suite."""

    VECTORS = {
        b"": "d41d8cd98f00b204e9800998ecf8427e",
        b"a": "0cc175b9c0f1b6a831c399e269772661",
        b"abc": "900150983cd24fb0d6963f7d28e17f72",
        b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
        b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789":
            "d174ab98d277d9f5a5611c2c9f419d9f",
        b"1234567890" * 8: "57edf4a22be3c955ac49da2e2107b67a",
    }

    @pytest.mark.parametrize("message,expected", sorted(VECTORS.items()))
    def test_rfc1321_vector(self, message, expected):
        assert md5_hex(message) == expected

    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert md5_hex(data) == hashlib.md5(data).hexdigest()

    def test_incremental(self):
        h = MD5()
        for chunk in (b"mes", b"sage", b" digest"):
            h.update(chunk)
        assert h.hexdigest() == "f96b697d7cb7938d525a2f31aaf161d0"

    def test_copy_is_independent(self):
        h = MD5(b"abc")
        clone = h.copy()
        clone.update(b"x")
        assert h.hexdigest() == md5_hex(b"abc")

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            MD5().update("oops")  # type: ignore[arg-type]


class TestAcceleratedBackends:
    """The accelerated registry backend and the reference must agree.

    The old ``sha256.set_accelerated`` module toggle is retired: engine
    selection now goes through the :mod:`repro.crypto.backend` registry,
    and the pure-Python primitives above are always the reference path.
    """

    SIZES = (0, 1, 55, 56, 64, 65, 1000)

    @pytest.fixture()
    def backends(self):
        from repro.crypto import get_backend
        return get_backend("reference"), get_backend("accelerated")

    def test_registry_lists_both_engines(self):
        from repro.crypto import available_backends
        names = available_backends()
        assert "reference" in names
        assert "accelerated" in names

    def test_unknown_backend_is_a_loud_error(self):
        from repro.crypto import get_backend
        with pytest.raises(ValueError, match="unknown crypto backend"):
            get_backend("no-such-engine")

    def test_set_default_returns_previous_name(self):
        from repro.crypto import default_backend, set_default_backend
        before = default_backend().name
        try:
            assert set_default_backend("reference") == before
            assert default_backend().name == "reference"
            assert set_default_backend("accelerated") == "reference"
        finally:
            set_default_backend(before)

    def test_sha256_backends_agree(self, backends):
        reference, accelerated = backends
        for size in self.SIZES:
            data = (bytes(range(256)) * (size // 256 + 1))[:size]
            expected = hashlib.sha256(data).digest()
            assert reference.sha256(data) == expected
            assert accelerated.sha256(data) == expected
            assert reference.sha256_hex(data) == expected.hex()
            assert accelerated.sha256_hex(data) == expected.hex()

    def test_md5_backends_agree(self, backends):
        reference, accelerated = backends
        for size in self.SIZES:
            data = (bytes(range(256)) * (size // 256 + 1))[:size]
            expected = hashlib.md5(data).hexdigest()
            assert reference.md5_hex(data) == expected
            assert accelerated.md5_hex(data) == expected

    def test_incremental_across_backends(self, backends):
        """A reference streaming digest equals an accelerated one-shot."""
        reference, accelerated = backends
        pure = reference.new_sha256(b"split ")
        pure.update(b"update")
        assert pure.digest() == accelerated.sha256(b"split update")
