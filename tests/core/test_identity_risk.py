"""IdentityRiskTracker: window semantics, risk values, breach policy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IdentityRiskTracker, TouchOutcomeKind

V = TouchOutcomeKind.VERIFIED
F = TouchOutcomeKind.MATCH_FAILED
Q = TouchOutcomeKind.LOW_QUALITY
N = TouchOutcomeKind.NOT_COVERED


class TestRiskValues:
    def test_empty_window_zero_risk(self):
        tracker = IdentityRiskTracker(window=8)
        assessment = tracker.assess()
        assert assessment.risk == 0.0
        assert not assessment.breach

    def test_all_verified_zero_risk(self):
        tracker = IdentityRiskTracker(window=4, min_verified=2)
        for _ in range(4):
            assessment = tracker.record(V)
        assert assessment.risk == 0.0
        assert assessment.window_full
        assert not assessment.breach

    def test_risk_ramps_by_one_over_n(self):
        tracker = IdentityRiskTracker(window=8)
        assessment = tracker.record(F)
        assert assessment.risk == pytest.approx(1 / 8)
        assessment = tracker.record(F)
        assert assessment.risk == pytest.approx(2 / 8)

    def test_paper_definition_x_out_of_n(self):
        """Risk = 1 - x/n with x verified in a full window of n."""
        tracker = IdentityRiskTracker(window=5, min_verified=1)
        for kind in (V, F, V, F, F):
            assessment = tracker.record(kind)
        assert assessment.risk == pytest.approx(1.0 - 2 / 5)
        assert assessment.verified_in_window == 2

    def test_window_slides(self):
        tracker = IdentityRiskTracker(window=3, min_verified=1)
        for kind in (V, V, V, F, F, F):
            assessment = tracker.record(kind)
        assert assessment.verified_in_window == 0
        assert assessment.risk == 1.0
        assert assessment.breach


class TestBreachPolicy:
    def test_breach_requires_full_window(self):
        tracker = IdentityRiskTracker(window=4, min_verified=2)
        for _ in range(3):
            assessment = tracker.record(F)
        assert not assessment.breach  # only 3 of 4 slots filled
        assessment = tracker.record(F)
        assert assessment.breach

    def test_k_of_n_boundary(self):
        tracker = IdentityRiskTracker(window=4, min_verified=2)
        for kind in (V, V, F, F):
            assessment = tracker.record(kind)
        assert not assessment.breach  # exactly k verified
        assessment = tracker.record(F)  # evicts a V
        assert assessment.breach

    def test_reset_clears_window(self):
        tracker = IdentityRiskTracker(window=3, min_verified=1)
        for _ in range(3):
            tracker.record(F)
        assert tracker.assess().breach
        tracker.reset()
        assert tracker.assess().risk == 0.0
        assert not tracker.assess().breach


class TestCountingPolicy:
    def test_low_quality_counts_by_default(self):
        """Deliberate low-quality evasion raises risk (countermeasure 3)."""
        tracker = IdentityRiskTracker(window=4, min_verified=1)
        for _ in range(4):
            assessment = tracker.record(Q)
        assert assessment.breach
        assert assessment.risk == 1.0

    def test_low_quality_can_be_excluded(self):
        tracker = IdentityRiskTracker(window=4, min_verified=1,
                                      count_low_quality=False)
        for _ in range(10):
            assessment = tracker.record(Q)
        assert assessment.window_fill == 0
        assert not assessment.breach

    def test_not_covered_excluded_by_default(self):
        tracker = IdentityRiskTracker(window=4, min_verified=1)
        for _ in range(10):
            assessment = tracker.record(N)
        assert assessment.window_fill == 0
        assert assessment.risk == 0.0

    def test_not_covered_can_be_counted(self):
        tracker = IdentityRiskTracker(window=4, min_verified=1,
                                      count_not_covered=True)
        for _ in range(4):
            assessment = tracker.record(N)
        assert assessment.breach


class TestValidationAndStats:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            IdentityRiskTracker(window=0)
        with pytest.raises(ValueError):
            IdentityRiskTracker(window=4, min_verified=5)

    def test_lifetime_stats(self):
        tracker = IdentityRiskTracker(window=4)
        for kind in (V, F, N, V):
            tracker.record(kind)
        assert tracker.total_recorded == 4
        assert tracker.lifetime_verification_rate == pytest.approx(0.5)

    def test_lifetime_rate_empty(self):
        assert IdentityRiskTracker().lifetime_verification_rate == 0.0

    @given(st.lists(st.sampled_from([V, F, Q, N]), max_size=60),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_risk_always_in_unit_range(self, kinds, window):
        tracker = IdentityRiskTracker(window=window,
                                      min_verified=min(2, window))
        for kind in kinds:
            assessment = tracker.record(kind)
            assert 0.0 <= assessment.risk <= 1.0
            assert assessment.window_fill <= window

    @given(st.lists(st.sampled_from([V, F]), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_breach_iff_verified_below_k_in_full_window(self, kinds):
        window, k = 6, 2
        tracker = IdentityRiskTracker(window=window, min_verified=k)
        for kind in kinds:
            assessment = tracker.record(kind)
        expected_window = kinds[-window:]
        expected_verified = sum(1 for kind in expected_window if kind is V)
        if len(expected_window) == window:
            assert assessment.breach == (expected_verified < k)
        else:
            assert not assessment.breach
