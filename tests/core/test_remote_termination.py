"""TrustCoordinator termination paths, with their emitted trace trees.

Three ways a remote session ends badly — the holder fails a
re-authentication challenge, the server cuts the session on reported
risk, and a mid-session hijack — each asserted two ways: the
:class:`RemoteSessionReport` fields the caller sees, and the span tree
the coordinator's instrumentation records for the same run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import IdentityRiskTracker, TrustCoordinator
from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import MobileDevice, TrustClient, UntrustedChannel, WebServer
from repro.obs import Instrumentation
from repro.touchgen import (
    SessionConfig,
    SessionGenerator,
    example_users,
    make_tap,
)

LOGIN_XY = (28.0, 80.0)


@pytest.fixture(scope="module")
def alice_master():
    return synthesize_master("user1-right-thumb", np.random.default_rng(50))


@pytest.fixture(scope="module")
def eve_master():
    return synthesize_master("eve-thumb", np.random.default_rng(950))


@pytest.fixture(scope="module")
def alice_template(alice_master):
    return enroll_master(alice_master, np.random.default_rng(51))


def _deployment(alice_master, alice_template, obs):
    """Fresh registered device/server pair sharing one instrumentation."""
    ca = CertificateAuthority(rng=HmacDrbg(b"ca-term"), key_bits=1024)
    device = MobileDevice("dev-term", b"seed-term", ca=ca)
    device.flock.enroll_local_user(alice_template)
    server = WebServer("www.bank.com", ca, b"server-term", obs=obs)
    server.create_account("alice", "pw")
    channel = UntrustedChannel()
    outcome = TrustClient(device, server, channel).register(
        "alice", LOGIN_XY, alice_master, np.random.default_rng(52))
    assert outcome.success
    return device, server, channel


class ScriptedRiskTracker(IdentityRiskTracker):
    """Window tracker whose *reported* risk follows a fixed script.

    ``risks[i]`` is reported after ``i`` recorded touches (the last entry
    repeats), which lets a test hold the session exactly inside the
    server's challenge band or push it over the termination threshold
    without simulating dozens of organic gestures.
    """

    def __init__(self, risks):
        super().__init__()
        self._risks = list(risks)
        self._recorded = 0

    def record(self, kind):
        self._recorded += 1
        return super().record(kind)

    def assess(self):
        base = super().assess()
        index = min(self._recorded, len(self._risks) - 1)
        return replace(base, risk=self._risks[index])


def _taps(finger_id, count):
    return [make_tap(float(i), LOGIN_XY[0], LOGIN_XY[1], 0.5, 0.1, finger_id)
            for i in range(count)]


class TestChallengeFailure:
    def test_impostor_fails_every_challenge(self, alice_master,
                                            alice_template, eve_master):
        obs = Instrumentation.live()
        device, server, channel = _deployment(alice_master, alice_template,
                                              obs)
        # Risk 0.6 sits in (challenge, termination): every request draws a
        # challenge; Eve holds the phone, so no answer ever verifies.
        tracker = ScriptedRiskTracker([0.0, 0.6])
        coordinator = TrustCoordinator(device, server, channel, "alice",
                                       tracker=tracker, obs=obs)
        gestures = _taps(alice_master.finger_id, 4)
        report = coordinator.run_session(
            gestures, {alice_master.finger_id: eve_master},
            np.random.default_rng(53), login_master=alice_master)

        assert report.login.success
        assert not report.terminated  # challenge failure alone is not a cut
        assert report.gestures_processed == 4
        assert report.challenges_failed == 4
        assert report.requests_failed == 4
        assert report.challenges_answered == 0
        assert report.requests_ok == 0

        spans = obs.tracer.find("gesture")
        assert [span.attributes["decision"] for span in spans] \
            == ["challenge-failed"] * 4
        for span in spans:
            assert len(span.find("client.request")) == 1
            assert len(span.find("client.challenge")) == 1
            (dispatch,) = span.find("client.request")[0].find("server.dispatch")
            assert dispatch.attributes["endpoint"] == "page-request"
            assert dispatch.attributes["client_trace"] == span.trace_id
        device.flock.close_session(server.domain)


class TestRiskDrivenTermination:
    def test_server_cuts_session_on_reported_risk(self, alice_master,
                                                  alice_template):
        obs = Instrumentation.live()
        device, server, channel = _deployment(alice_master, alice_template,
                                              obs)
        # Genuine user throughout; the scripted tracker alone pushes the
        # reported risk over the server's 0.75 termination threshold.
        tracker = ScriptedRiskTracker([0.0, 0.9])
        coordinator = TrustCoordinator(device, server, channel, "alice",
                                       tracker=tracker, obs=obs)
        gestures = _taps(alice_master.finger_id, 3)
        report = coordinator.run_session(
            gestures, {alice_master.finger_id: alice_master},
            np.random.default_rng(54), login_master=alice_master)

        assert report.login.success
        assert report.terminated
        assert report.termination_reason == "risk-too-high"
        assert report.gestures_processed == 1  # loop breaks at the cut
        assert report.requests_failed == 1
        assert report.requests_ok == 0
        assert not device.flock.has_session(server.domain)

        (span,) = obs.tracer.find("gesture")
        assert span.attributes["decision"] == "risk-too-high"
        assert span.attributes["risk"] == pytest.approx(0.9)
        (dispatch,) = span.find("server.dispatch")
        # The rejection propagates as an exception through the server span.
        assert dispatch.status == "error"
        assert dispatch.attributes["decision"] == "risk-too-high"


class TestMidSessionHijack:
    class HijackedHands:
        """``masters`` mapping that swaps the physical finger mid-stream."""

        def __init__(self, genuine, impostor, hijack_after):
            self.genuine = genuine
            self.impostor = impostor
            self.hijack_after = hijack_after
            self.lookups = 0

        def __getitem__(self, finger_id):
            self.lookups += 1
            if self.lookups <= self.hijack_after:
                return self.genuine
            return self.impostor

    def test_hijack_report_and_span_tree_agree(self, alice_master,
                                               alice_template, eve_master):
        obs = Instrumentation.live()
        device, server, channel = _deployment(alice_master, alice_template,
                                              obs)
        coordinator = TrustCoordinator(device, server, channel, "alice",
                                       obs=obs)
        trace = SessionGenerator(example_users()[0]).generate(
            SessionConfig(n_interactions=60), seed=21)
        hands = self.HijackedHands(alice_master, eve_master, hijack_after=10)
        report = coordinator.run_session(trace.gestures, hands,
                                         np.random.default_rng(55),
                                         login_master=alice_master)

        assert report.login.success
        assert report.terminated
        assert report.termination_reason == "risk-too-high"
        # The cut comes after the hijack, before the stream runs out.
        assert 10 < report.gestures_processed < len(trace.gestures)
        assert report.risk_series[-1] > report.risk_series[0]
        assert not device.flock.has_session(server.domain)

        spans = obs.tracer.find("gesture")
        assert len(spans) == report.gestures_processed
        # Every gesture is its own trace, and the spans' risk attributes
        # are exactly the report's risk series — one story, told twice.
        assert len({span.trace_id for span in spans}) == len(spans)
        assert [span.attributes["risk"] for span in spans] \
            == report.risk_series
        assert spans[-1].attributes["decision"] == "risk-too-high"
        for span in spans:
            for dispatch in span.find("server.dispatch"):
                assert dispatch.attributes["client_trace"] == span.trace_id
