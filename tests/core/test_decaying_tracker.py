"""DecayingRiskTracker: the exponential-forgetting risk memory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DecayingRiskTracker, TouchOutcomeKind

V = TouchOutcomeKind.VERIFIED
F = TouchOutcomeKind.MATCH_FAILED
Q = TouchOutcomeKind.LOW_QUALITY
N = TouchOutcomeKind.NOT_COVERED


class TestDecay:
    def test_fresh_tracker_zero_risk(self):
        tracker = DecayingRiskTracker()
        assessment = tracker.assess()
        assert assessment.risk == 0.0
        assert not assessment.breach

    def test_all_verified_stays_low(self):
        tracker = DecayingRiskTracker()
        for _ in range(20):
            assessment = tracker.record(V)
        assert assessment.risk == 0.0
        assert not assessment.breach

    def test_all_failed_breaches(self):
        tracker = DecayingRiskTracker(half_life_touches=4.0)
        breached = False
        for _ in range(20):
            if tracker.record(F).breach:
                breached = True
                break
        assert breached

    def test_risk_ramps_gradually(self):
        tracker = DecayingRiskTracker()
        first = tracker.record(F).risk
        assert first < 0.3  # warm-up attenuates early failures
        later = first
        for _ in range(10):
            later = tracker.record(F).risk
        assert later > first

    def test_old_evidence_fades(self):
        """After a takeover, verified history decays away smoothly."""
        tracker = DecayingRiskTracker(half_life_touches=4.0)
        for _ in range(20):
            tracker.record(V)
        risks = [tracker.record(F).risk for _ in range(12)]
        assert risks == sorted(risks)  # monotone rise
        assert risks[-1] > 0.75

    def test_reset(self):
        tracker = DecayingRiskTracker()
        for _ in range(10):
            tracker.record(F)
        tracker.reset()
        assert tracker.assess().risk == 0.0

    def test_counting_policies(self):
        counted = DecayingRiskTracker()
        for _ in range(15):
            assessment_counted = counted.record(Q)
        ignored = DecayingRiskTracker(count_low_quality=False)
        for _ in range(15):
            assessment_ignored = ignored.record(Q)
        assert assessment_counted.risk > 0.8
        assert assessment_ignored.risk == 0.0
        uncovered = DecayingRiskTracker()
        for _ in range(15):
            assessment_uncovered = uncovered.record(N)
        assert assessment_uncovered.risk == 0.0  # ignored by default

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayingRiskTracker(half_life_touches=0)
        with pytest.raises(ValueError):
            DecayingRiskTracker(breach_risk=0.0)

    def test_lifetime_stats(self):
        tracker = DecayingRiskTracker()
        for kind in (V, F, N, V):
            tracker.record(kind)
        assert tracker.total_recorded == 4
        assert tracker.lifetime_verification_rate == pytest.approx(0.5)

    @given(st.lists(st.sampled_from([V, F, Q, N]), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_risk_always_in_unit_range(self, kinds):
        tracker = DecayingRiskTracker()
        for kind in kinds:
            assessment = tracker.record(kind)
            assert 0.0 <= assessment.risk <= 1.0

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_steady_failure_converges_to_one(self, half_life):
        tracker = DecayingRiskTracker(half_life_touches=float(half_life))
        for _ in range(half_life * 12):
            risk = tracker.record(F).risk
        assert risk > 0.95
