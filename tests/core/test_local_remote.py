"""Pipeline, policies, local identity manager, remote coordinator."""

import numpy as np
import pytest

from repro.core import (
    CriticalButtonRule,
    DeviceState,
    IdentityRiskTracker,
    LocalIdentityManager,
    MinTouchTimeRule,
    ResponseAction,
    ResponsePolicy,
    TrustCoordinator,
)
from repro.crypto import CertificateAuthority, HmacDrbg
from repro.fingerprint import enroll_master, synthesize_master
from repro.net import MobileDevice, UntrustedChannel, WebServer, register_device
from repro.touchgen import (
    SessionConfig,
    SessionGenerator,
    example_users,
    make_swipe,
    make_tap,
    standard_layouts,
)

UNLOCK_XY = (28.0, 80.0)


@pytest.fixture(scope="module")
def alice_master():
    return synthesize_master("user1-right-thumb", np.random.default_rng(5))


@pytest.fixture(scope="module")
def eve_master():
    return synthesize_master("eve-thumb", np.random.default_rng(900))


@pytest.fixture(scope="module")
def alice_template(alice_master):
    return enroll_master(alice_master, np.random.default_rng(6))


@pytest.fixture()
def manager(alice_template):
    device = MobileDevice("dev-core", b"seed-core")
    device.flock.enroll_local_user(alice_template)
    return LocalIdentityManager(flock=device.flock, panel=device.panel,
                                unlock_button_xy=UNLOCK_XY)


def _unlock(manager, master, rng, attempts=5):
    for i in range(attempts):
        if manager.try_unlock(master, rng, time_s=i * 0.4):
            return True
    return False


class TestPolicies:
    def test_response_ladder(self):
        policy = ResponsePolicy(challenge_risk=0.5, halt_risk=0.8)
        assert policy.action_for(0.2, False) is ResponseAction.NONE
        assert policy.action_for(0.6, False) is ResponseAction.CHALLENGE
        assert policy.action_for(0.9, False) is ResponseAction.HALT_INTERACTION
        assert policy.action_for(0.2, True) is ResponseAction.LOCK_DEVICE

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResponsePolicy(challenge_risk=0.9, halt_risk=0.5)
        with pytest.raises(ValueError):
            ResponsePolicy(challenge_risk=1.5)

    def test_min_touch_time_rule(self):
        rule = MinTouchTimeRule(min_duration_s=0.05)
        long_tap = make_tap(0.0, 10, 10, 0.5, 0.1, "f")
        flick = make_tap(0.0, 10, 10, 0.5, 0.02, "f")
        assert rule.permits(long_tap)
        assert not rule.permits(flick)
        with pytest.raises(ValueError):
            MinTouchTimeRule(min_duration_s=0)

    def test_critical_button_rule(self, manager):
        """Countermeasure 1: every critical button sits over a sensor."""
        rule = CriticalButtonRule(manager.flock.controller.layout)
        layouts = standard_layouts()
        for layout in layouts.values():
            assert rule.is_compliant(layout), \
                rule.uncovered_critical_elements(layout)

    def test_critical_button_rule_flags_bad_layout(self, manager):
        from repro.touchgen import UiElement, UiLayout
        rule = CriticalButtonRule(manager.flock.controller.layout)
        bad = UiLayout("bad", 56, 94, (
            UiElement("send-money", 2, 2, 10, 6, critical=True),
        ))
        assert rule.uncovered_critical_elements(bad) == ["send-money"]


class TestLocalManager:
    def test_starts_locked_and_unlocks_on_verified_touch(self, manager,
                                                         alice_master):
        rng = np.random.default_rng(1)
        assert manager.state is DeviceState.LOCKED
        assert _unlock(manager, alice_master, rng)
        assert manager.state is DeviceState.UNLOCKED

    def test_impostor_cannot_unlock(self, manager, eve_master):
        rng = np.random.default_rng(2)
        assert not _unlock(manager, eve_master, rng, attempts=8)
        assert manager.state is DeviceState.LOCKED

    def test_unlock_button_must_be_over_sensor(self, alice_template):
        device = MobileDevice("dev-bad", b"seed-bad")
        device.flock.enroll_local_user(alice_template)
        with pytest.raises(ValueError, match="unlock button"):
            LocalIdentityManager(flock=device.flock, panel=device.panel,
                                 unlock_button_xy=(5.0, 5.0))

    def test_locked_device_ignores_gestures(self, manager, alice_master):
        rng = np.random.default_rng(3)
        tap = make_tap(0.0, 28, 80, 0.5, 0.1, alice_master.finger_id)
        result = manager.process_gesture(tap, alice_master, rng)
        assert result.event is None
        assert result.state is DeviceState.LOCKED

    def test_genuine_user_stays_unlocked(self, manager, alice_master):
        rng = np.random.default_rng(4)
        assert _unlock(manager, alice_master, rng)
        trace = SessionGenerator(example_users()[0]).generate(
            SessionConfig(n_interactions=60), seed=7)
        for gesture in trace.gestures:
            manager.process_gesture(gesture, alice_master, rng)
        assert manager.locks == 0
        assert manager.state is not DeviceState.LOCKED

    def test_impostor_takeover_locks_device(self, manager, alice_master,
                                            eve_master):
        rng = np.random.default_rng(5)
        assert _unlock(manager, alice_master, rng)
        trace = SessionGenerator(example_users()[0]).generate(
            SessionConfig(n_interactions=120), seed=8)
        for gesture in trace.gestures[:30]:
            manager.process_gesture(gesture, alice_master, rng)
        takeover = len(manager.pipeline.events)
        locked = False
        for gesture in trace.gestures[30:]:
            result = manager.process_gesture(gesture, eve_master, rng)
            if result.state is DeviceState.LOCKED:
                locked = True
                break
        assert locked
        latency = manager.detection_latency(takeover)
        assert latency is not None and latency <= 90

    def test_too_brief_touch_ignored(self, manager, alice_master):
        rng = np.random.default_rng(6)
        assert _unlock(manager, alice_master, rng)
        flick = make_tap(10.0, 28, 80, 0.5, 0.01, alice_master.finger_id)
        result = manager.process_gesture(flick, alice_master, rng)
        assert result.event is None  # countermeasure 2: not even counted

    def test_fast_swipes_degrade_to_low_quality_not_verification(
            self, manager, alice_master):
        """A fast swipe over a sensor should not produce verified captures."""
        rng = np.random.default_rng(7)
        assert _unlock(manager, alice_master, rng)
        swipe = make_swipe(10.0, (28.0, 80.0), (28.0, 40.0),
                           duration_s=0.08,  # 500 mm/s — very fast
                           pressure=0.5, finger_id=alice_master.finger_id)
        result = manager.process_gesture(swipe, alice_master, rng)
        if result.event is not None and result.event.auth.captured:
            assert not result.event.verified


class TestRemoteCoordinator:
    @pytest.fixture(scope="class")
    def deployment(self, alice_master, alice_template):
        ca = CertificateAuthority(rng=HmacDrbg(b"ca-core"), key_bits=1024)
        device = MobileDevice("dev-remote", b"seed-remote", ca=ca)
        device.flock.enroll_local_user(alice_template)
        server = WebServer("www.bank.com", ca, b"server-core")
        server.create_account("alice", "pw")
        channel = UntrustedChannel()
        outcome = register_device(device, server, channel, "alice",
                                  UNLOCK_XY, alice_master,
                                  np.random.default_rng(0))
        assert outcome.success
        return device, server, channel

    def test_genuine_session_completes(self, deployment, alice_master):
        device, server, channel = deployment
        rng = np.random.default_rng(10)
        trace = SessionGenerator(example_users()[0]).generate(
            SessionConfig(n_interactions=25), seed=11)
        coordinator = TrustCoordinator(device, server, channel, "alice")
        masters = {alice_master.finger_id: alice_master}
        report = coordinator.run_session(trace.gestures, masters, rng,
                                         login_master=alice_master)
        assert report.login.success
        assert report.requests_ok > 0
        assert len(report.risk_series) == report.gestures_processed
        device.flock.close_session(server.domain)

    def test_hijacked_session_terminated(self, deployment, alice_master,
                                         eve_master):
        device, server, channel = deployment
        rng = np.random.default_rng(12)
        trace = SessionGenerator(example_users()[0]).generate(
            SessionConfig(n_interactions=80), seed=13)
        coordinator = TrustCoordinator(device, server, channel, "alice")
        # Eve holds the phone for the whole post-login phase.
        masters = {alice_master.finger_id: eve_master}
        report = coordinator.run_session(trace.gestures, masters, rng,
                                         login_master=alice_master)
        assert report.login.success  # Alice logged in...
        assert report.terminated  # ...but Eve got cut off
        assert report.termination_reason == "risk-too-high"
        assert not device.flock.has_session(server.domain)

    def test_risk_series_rises_under_hijack(self, deployment, alice_master,
                                            eve_master):
        device, server, channel = deployment
        rng = np.random.default_rng(14)
        trace = SessionGenerator(example_users()[0]).generate(
            SessionConfig(n_interactions=80), seed=15)
        coordinator = TrustCoordinator(device, server, channel, "alice")
        masters = {alice_master.finger_id: eve_master}
        report = coordinator.run_session(trace.gestures, masters, rng,
                                         login_master=alice_master)
        if len(report.risk_series) >= 5:
            assert report.risk_series[-1] > report.risk_series[0]
        device.flock.close_session(server.domain)
