"""The host-interface command boundary: whitelist, logging, no secrets."""

import numpy as np
import pytest

from repro.crypto import CertificateAuthority, HmacDrbg, RsaPublicKey, generate_keypair
from repro.fingerprint import enroll_master, synthesize_master
from repro.flock import FlockError, HostCommandError, HostInterface
from repro.net import MobileDevice


@pytest.fixture(scope="module")
def bound_device():
    ca = CertificateAuthority(rng=HmacDrbg(b"ca-host"), key_bits=1024)
    master = synthesize_master("host-f", np.random.default_rng(5))
    template = enroll_master(master, np.random.default_rng(6))
    device = MobileDevice("host-dev", b"host-seed", ca=ca)
    device.flock.enroll_local_user(template)
    server_key = generate_keypair(HmacDrbg(b"host-server"), bits=1024)
    cert = ca.issue("www.host.example", "web-server", server_key.public_key)
    device.flock.begin_service_binding("www.host.example", "acct", cert,
                                       now=0)
    device.flock.complete_service_binding("www.host.example", template)
    return device, server_key


@pytest.fixture()
def interface(bound_device):
    device, _ = bound_device
    return HostInterface(flock=device.flock)


class TestCommandDispatch:
    def test_public_key_roundtrips(self, interface, bound_device):
        device, _ = bound_device
        raw = interface.call("get-public-key")
        assert RsaPublicKey.from_bytes(raw) == device.flock.public_key

    def test_certificate(self, interface):
        assert len(interface.call("get-certificate")) > 100

    def test_list_domains(self, interface):
        assert interface.call("list-domains") == ["www.host.example"]

    def test_service_view_has_no_secrets(self, interface):
        view = interface.call("get-service-view", domain="www.host.example")
        assert set(view) == {"domain", "account", "public_key"}

    def test_sign_commands(self, interface, bound_device):
        device, _ = bound_device
        signature = interface.call("sign-as-device", message=b"m")
        assert device.flock.public_key.verify(b"m", signature)
        service_sig = interface.call("sign-for-service",
                                     domain="www.host.example", message=b"m")
        view = device.flock.service_view("www.host.example")
        assert view.public_key.verify(b"m", service_sig)

    def test_session_lifecycle(self, interface, bound_device):
        device, server_key = bound_device
        sealed = interface.call("open-session", domain="www.host.example")
        session_key = server_key.decrypt(sealed)
        assert len(session_key) == 32
        tag = interface.call("session-mac", domain="www.host.example",
                             message=b"payload")
        assert interface.call("verify-session-mac",
                              domain="www.host.example",
                              message=b"payload", tag=tag)
        interface.call("close-session", domain="www.host.example")
        with pytest.raises(FlockError):
            interface.call("session-mac", domain="www.host.example",
                           message=b"x")

    def test_unknown_command_rejected(self, interface):
        with pytest.raises(HostCommandError, match="unknown command"):
            interface.call("read-template")
        with pytest.raises(HostCommandError):
            interface.call("get-private-key")

    def test_bad_arguments_rejected(self, interface):
        with pytest.raises(HostCommandError, match="bad arguments"):
            interface.call("sign-as-device", wrong_kwarg=b"m")

    def test_no_secret_reading_commands_exist(self):
        """The whitelist itself is the security property."""
        forbidden_words = ("template", "private", "secret", "session-key",
                           "flash", "record")
        for command in HostInterface.COMMANDS:
            for word in forbidden_words:
                assert word not in command, command


class TestAuditLog:
    def test_log_records_success_and_failure(self, interface):
        interface.call("list-domains")
        with pytest.raises(HostCommandError):
            interface.call("nope")
        assert interface.log[-2].ok
        assert not interface.log[-1].ok
        assert interface.log[-1].error == "unknown-command"

    def test_flock_errors_logged(self, interface):
        with pytest.raises(FlockError):
            interface.call("attest-challenge", domain="www.host.example")
        assert not interface.log[-1].ok

    def test_command_counts(self, interface):
        interface.call("list-domains")
        interface.call("list-domains")
        assert interface.command_counts()["list-domains"] == 2
