"""FLock module: storage, display repeater, controllers, trusted boundary."""

import numpy as np
import pytest

from repro.crypto import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    HmacDrbg,
    generate_keypair,
)
from repro.fingerprint import (
    DEFAULT_PARTIAL_MODEL,
    enroll_master,
    synthesize_master,
)
from repro.flock import (
    FlockError,
    FlockModule,
    Frame,
    FrameHashEngine,
    ProtectedFlash,
    ServiceRecord,
    SramModel,
    StorageError,
)
from repro.flock.display import SCROLL_QUANTUM_PX, DisplayRepeater
from repro.hardware import (
    FLOCK_SENSOR,
    PlacedSensor,
    SensorLayout,
    TouchEvent,
    TouchPanel,
)


@pytest.fixture(scope="module")
def alice_master():
    return synthesize_master("alice-thumb", np.random.default_rng(5))


@pytest.fixture(scope="module")
def alice_template(alice_master):
    return enroll_master(alice_master, np.random.default_rng(6))


@pytest.fixture(scope="module")
def eve_master():
    return synthesize_master("eve-thumb", np.random.default_rng(500))


@pytest.fixture()
def layout():
    return SensorLayout(56, 94, [PlacedSensor(FLOCK_SENSOR, 20, 60, label="s0")])


@pytest.fixture()
def flock(layout, alice_template):
    module = FlockModule("dev-test", b"seed-test", layout)
    module.enroll_local_user(alice_template)
    return module


def _touch_on_sensor(panel, i=0, finger="alice-thumb", pressure=0.5):
    return panel.locate(TouchEvent(
        time_s=float(i), x_mm=26.0 + (i % 5) * 0.5, y_mm=65.0 + (i % 3),
        pressure=pressure, finger_id=finger))


class TestStorage:
    def _record(self, domain="www.xyz.com"):
        rng = HmacDrbg(b"storage-test")
        kp = generate_keypair(rng, bits=1024)
        server = generate_keypair(rng, bits=1024)
        template = enroll_master(
            synthesize_master("f", np.random.default_rng(0)),
            np.random.default_rng(1))
        return ServiceRecord(domain=domain, account="ab12",
                             key_pair=kp, fingerprint=template,
                             server_public_key=server.public_key)

    def test_add_and_fetch(self):
        flash = ProtectedFlash()
        record = self._record()
        flash.add_record(record)
        assert flash.record("www.xyz.com") is record
        assert flash.has_record("www.xyz.com")
        assert flash.domains() == ["www.xyz.com"]

    def test_duplicate_rejected(self):
        flash = ProtectedFlash()
        flash.add_record(self._record())
        with pytest.raises(StorageError, match="already exists"):
            flash.add_record(self._record())

    def test_capacity(self):
        flash = ProtectedFlash(capacity_records=1)
        flash.add_record(self._record("a.com"))
        with pytest.raises(StorageError, match="capacity"):
            flash.add_record(self._record("b.com"))

    def test_missing_record(self):
        with pytest.raises(StorageError, match="no record"):
            ProtectedFlash().record("nope.com")

    def test_remove(self):
        flash = ProtectedFlash()
        flash.add_record(self._record())
        flash.remove_record("www.xyz.com")
        assert not flash.has_record("www.xyz.com")
        with pytest.raises(StorageError):
            flash.remove_record("www.xyz.com")

    def test_public_view_excludes_private_key(self):
        record = self._record()
        view = record.public_view()
        assert view.public_key == record.key_pair.public_key
        assert not hasattr(view, "key_pair")
        assert not hasattr(view, "fingerprint")

    def test_device_template(self):
        flash = ProtectedFlash()
        assert not flash.has_device_template
        with pytest.raises(StorageError):
            flash.device_template()

    def test_sram_accounting(self):
        sram = SramModel(capacity_bytes=100)
        sram.allocate(60)
        sram.allocate(30)
        assert sram.peak_bytes == 90
        with pytest.raises(StorageError):
            sram.allocate(20)
        sram.release(50)
        sram.allocate(20)
        assert sram.used_bytes == 60

    def test_sram_invalid_release(self):
        sram = SramModel()
        with pytest.raises(ValueError):
            sram.release(1)


class TestDisplay:
    def test_same_frame_same_hash(self):
        engine = FrameHashEngine()
        frame = Frame(b"<html>page</html>")
        assert engine.hash_frame(frame) == engine.hash_frame(frame)

    def test_different_page_different_hash(self):
        engine = FrameHashEngine()
        assert engine.hash_frame(Frame(b"a")) != engine.hash_frame(Frame(b"b"))

    def test_zoom_changes_hash(self):
        engine = FrameHashEngine()
        assert engine.hash_frame(Frame(b"p", zoom=1.0)) \
            != engine.hash_frame(Frame(b"p", zoom=2.0))

    def test_scroll_quantization(self):
        engine = FrameHashEngine()
        a = engine.hash_frame(Frame(b"p", scroll_px=0))
        b = engine.hash_frame(Frame(b"p", scroll_px=SCROLL_QUANTUM_PX - 1))
        c = engine.hash_frame(Frame(b"p", scroll_px=SCROLL_QUANTUM_PX))
        assert a == b  # same quantum bucket
        assert a != c

    def test_md5_mode(self):
        engine = FrameHashEngine(algorithm="md5")
        assert len(engine.hash_frame(Frame(b"p"))) == 16
        with pytest.raises(ValueError):
            FrameHashEngine(algorithm="sha1")

    def test_reachable_views_finite_and_contains_hash(self):
        frame = Frame(b"page-content", scroll_px=64, zoom=1.5)
        views = Frame(b"page-content").reachable_views(max_scroll_px=128)
        engine = FrameHashEngine()
        hashes = {engine.hash_frame(v) for v in views}
        # The displayed view's hash is inside the finite audit set.
        assert engine.hash_frame(frame) in hashes
        assert len(views) == len(list(views))

    def test_repeater_retains_current(self):
        repeater = DisplayRepeater()
        digest = repeater.show(Frame(b"page"))
        assert repeater.current_hash == digest
        new_digest = repeater.apply_view_change(zoom=2.0)
        assert new_digest != digest
        assert repeater.current_frame.zoom == 2.0

    def test_repeater_before_first_frame(self):
        repeater = DisplayRepeater()
        with pytest.raises(RuntimeError):
            _ = repeater.current_hash


class TestTouchPipeline:
    def test_genuine_touches_verify_at_reasonable_rate(
            self, flock, alice_master):
        panel = TouchPanel()
        rng = np.random.default_rng(1)
        results = [
            flock.handle_touch(_touch_on_sensor(panel, i), alice_master, rng)
            for i in range(20)
        ]
        captured = sum(r.captured for r in results)
        verified = sum(r.verified for r in results)
        # Panel quantization (2.3 mm electrode pitch) pushes a few touches
        # outside the sensor's usable margin — most are still captured.
        assert captured >= 14
        # Per-touch genuine verification is deliberately imperfect (partial
        # edge captures, motion); ~30-60 % is the operating range that the
        # k-of-n window is designed around.
        assert verified >= captured * 0.3

    def test_impostor_touches_do_not_verify(self, flock, eve_master):
        panel = TouchPanel()
        rng = np.random.default_rng(2)
        results = [
            flock.handle_touch(
                _touch_on_sensor(panel, i, finger="eve-thumb"),
                eve_master, rng)
            for i in range(15)
        ]
        assert sum(r.verified for r in results) == 0

    def test_off_sensor_touch_not_captured(self, flock, alice_master):
        panel = TouchPanel()
        rng = np.random.default_rng(3)
        touch = panel.locate(TouchEvent(time_s=0, x_mm=5, y_mm=5,
                                        finger_id="alice-thumb"))
        result = flock.handle_touch(touch, alice_master, rng)
        assert not result.captured and result.decision is None
        assert result.capture_time_s == 0.0

    def test_capture_time_accounted(self, flock, alice_master):
        panel = TouchPanel()
        rng = np.random.default_rng(4)
        result = flock.handle_touch(_touch_on_sensor(panel), alice_master, rng)
        assert result.captured
        assert 0.0 < result.capture_time_s < 0.005  # sub-5ms window capture

    def test_unenrolled_module_rejects(self, layout, alice_master):
        module = FlockModule("dev-x", b"seed-x", layout)
        panel = TouchPanel()
        with pytest.raises(FlockError, match="no user enrolled"):
            module.handle_touch(_touch_on_sensor(panel), alice_master,
                                np.random.default_rng(0))

    def test_modeled_processor_mode(self, layout, alice_template, alice_master):
        module = FlockModule("dev-m", b"seed-m", layout,
                             processor_mode="modeled")
        module.enroll_local_user(alice_template,
                                 score_model=DEFAULT_PARTIAL_MODEL)
        panel = TouchPanel()
        rng = np.random.default_rng(0)
        results = [
            module.handle_touch(_touch_on_sensor(panel, i), alice_master, rng)
            for i in range(10)
        ]
        assert sum(r.verified for r in results) >= 5

    def test_modeled_mode_requires_score_model(self, layout, alice_template):
        module = FlockModule("dev-m2", b"seed", layout,
                             processor_mode="modeled")
        with pytest.raises(FlockError, match="score model"):
            module.enroll_local_user(alice_template)

    def test_invalid_processor_mode(self, layout):
        with pytest.raises(ValueError):
            FlockModule("d", b"s", layout, processor_mode="quantum")


class TestServiceBinding:
    @pytest.fixture()
    def ca(self):
        return CertificateAuthority(rng=HmacDrbg(b"ca-flock-test"),
                                    key_bits=1024)

    @pytest.fixture()
    def server_key(self):
        return generate_keypair(HmacDrbg(b"server-flock"), bits=1024)

    def test_binding_lifecycle(self, flock, ca, server_key, alice_template):
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        pk = flock.begin_service_binding("www.xyz.com", "ab12", cert, now=0)
        view = flock.complete_service_binding("www.xyz.com", alice_template)
        assert view.public_key == pk
        assert view.domain == "www.xyz.com"
        assert flock.flash.has_record("www.xyz.com")

    def test_binding_requires_ca(self, flock, ca, server_key):
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        with pytest.raises(FlockError, match="no CA"):
            flock.begin_service_binding("www.xyz.com", "a", cert, now=0)

    def test_binding_rejects_wrong_subject(self, flock, ca, server_key):
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.evil.com", "web-server", server_key.public_key)
        with pytest.raises(CertificateError, match="does not match"):
            flock.begin_service_binding("www.xyz.com", "a", cert, now=0)

    def test_binding_rejects_forged_cert(self, flock, ca, server_key):
        flock.install_ca(ca.public_key)
        rogue = CertificateAuthority(rng=HmacDrbg(b"rogue"), key_bits=1024)
        cert = rogue.issue("www.xyz.com", "web-server", server_key.public_key)
        with pytest.raises(CertificateError, match="signature"):
            flock.begin_service_binding("www.xyz.com", "a", cert, now=0)

    def test_double_binding_rejected(self, flock, ca, server_key,
                                     alice_template):
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        flock.begin_service_binding("www.xyz.com", "a", cert, now=0)
        flock.complete_service_binding("www.xyz.com", alice_template)
        with pytest.raises(FlockError, match="already bound"):
            flock.begin_service_binding("www.xyz.com", "a", cert, now=0)

    def test_complete_without_begin(self, flock, alice_template):
        with pytest.raises(FlockError, match="no pending binding"):
            flock.complete_service_binding("www.other.com", alice_template)

    def test_unbind(self, flock, ca, server_key, alice_template):
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        flock.begin_service_binding("www.xyz.com", "a", cert, now=0)
        flock.complete_service_binding("www.xyz.com", alice_template)
        flock.unbind_service("www.xyz.com")
        assert not flock.flash.has_record("www.xyz.com")

    def test_signatures_for_service(self, flock, ca, server_key,
                                    alice_template):
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        pk = flock.begin_service_binding("www.xyz.com", "a", cert, now=0)
        flock.complete_service_binding("www.xyz.com", alice_template)
        sig = flock.sign_for_service("www.xyz.com", b"message")
        assert pk.verify(b"message", sig)

    def test_seal_for_server(self, flock, ca, server_key, alice_template):
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.xyz.com", "web-server", server_key.public_key)
        flock.begin_service_binding("www.xyz.com", "a", cert, now=0)
        flock.complete_service_binding("www.xyz.com", alice_template)
        sealed = flock.seal_for_server("www.xyz.com", b"session-key")
        assert server_key.decrypt(sealed) == b"session-key"


class TestDeviceIdentity:
    def test_device_keys_unique_per_seed(self, layout):
        a = FlockModule("dev-a", b"seed-a", layout)
        b = FlockModule("dev-b", b"seed-b", layout)
        assert a.public_key != b.public_key

    def test_certificate_installation(self, layout):
        module = FlockModule("dev-c", b"seed-c", layout)
        ca = CertificateAuthority(rng=HmacDrbg(b"ca2"), key_bits=1024)
        cert = ca.issue("dev-c", "flock-device", module.public_key)
        module.set_certificate(cert)
        assert module.certificate is cert

    def test_wrong_certificate_rejected(self, layout):
        module = FlockModule("dev-d", b"seed-d", layout)
        other = generate_keypair(HmacDrbg(b"other"), bits=1024)
        ca = CertificateAuthority(rng=HmacDrbg(b"ca3"), key_bits=1024)
        cert = ca.issue("dev-d", "flock-device", other.public_key)
        with pytest.raises(FlockError, match="does not match"):
            module.set_certificate(cert)

    def test_device_signature(self, layout):
        module = FlockModule("dev-e", b"seed-e", layout)
        sig = module.sign_as_device(b"attest")
        assert module.public_key.verify(b"attest", sig)


class TestFrameThroughModule:
    def test_show_frame_returns_hash(self, flock):
        digest = flock.show_frame(Frame(b"<html>login</html>"))
        assert flock.current_frame_hash == digest
        assert len(digest) == 32

    def test_sram_restored_after_frame(self, flock):
        flock.show_frame(Frame(b"x" * 1000))
        assert flock.sram.used_bytes == 0
        assert flock.sram.peak_bytes >= 1000


class TestIdentityTransfer:
    def _bound_flock(self, layout, alice_template):
        flock = FlockModule("dev-old", b"seed-old", layout)
        flock.enroll_local_user(alice_template)
        ca = CertificateAuthority(rng=HmacDrbg(b"ca-transfer"), key_bits=1024)
        server = generate_keypair(HmacDrbg(b"srv-transfer"), bits=1024)
        flock.install_ca(ca.public_key)
        cert = ca.issue("www.xyz.com", "web-server", server.public_key)
        flock.begin_service_binding("www.xyz.com", "ab12", cert, now=0)
        flock.complete_service_binding("www.xyz.com", alice_template)
        return flock

    def test_transfer_roundtrip(self, layout, alice_template):
        old = self._bound_flock(layout, alice_template)
        new = FlockModule("dev-new", b"seed-new", layout)
        bundle = old.export_identity(new.public_key,
                                     authorizing_touch_verified=True)
        installed = new.import_identity(bundle)
        assert installed == ["www.xyz.com"]
        assert new.flash.has_record("www.xyz.com")
        assert new.flash.has_device_template
        # The transferred service key signs identically.
        message = b"post-transfer"
        sig = new.sign_for_service("www.xyz.com", message)
        assert old.service_view("www.xyz.com").public_key.verify(message, sig)

    def test_transfer_requires_fingerprint_authorization(
            self, layout, alice_template):
        old = self._bound_flock(layout, alice_template)
        new = FlockModule("dev-new2", b"seed-new2", layout)
        with pytest.raises(FlockError, match="authorization"):
            old.export_identity(new.public_key,
                                authorizing_touch_verified=False)

    def test_bundle_unreadable_by_third_device(self, layout, alice_template):
        old = self._bound_flock(layout, alice_template)
        new = FlockModule("dev-new3", b"seed-new3", layout)
        thief = FlockModule("dev-thief", b"seed-thief", layout)
        bundle = old.export_identity(new.public_key,
                                     authorizing_touch_verified=True)
        with pytest.raises(Exception):
            thief.import_identity(bundle)

    def test_import_conflict_raises_flock_error(self, layout, alice_template):
        old = self._bound_flock(layout, alice_template)
        new = FlockModule("dev-new4", b"seed-new4", layout)
        bundle = old.export_identity(new.public_key,
                                     authorizing_touch_verified=True)
        new.import_identity(bundle)
        bundle2 = old.export_identity(new.public_key,
                                      authorizing_touch_verified=True)
        with pytest.raises(FlockError, match="import failed"):
            new.import_identity(bundle2)
